"""Property-based pins on the fleet scheduling contract.

Checked over random pool shapes, worker counts, fault schedules, and
crash points rather than hand-picked cases:

* sharding partitions the task list — every task executes exactly
  once, on some worker, for any (tasks, devices, jobs);
* killing a worker mid-run and resuming from the completed set yields
  the uninterrupted result, with no task lost and none run twice;
* a fleet compile that crashes mid-task resumes from its per-device
  checkpoints bit-identical to an uninterrupted fleet run, for any
  crash point and fault rate.
"""

import json
from collections import Counter

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.fleet import Fleet, FleetError, FleetScheduler, FleetTask
from repro.hardware.faults import FaultModel
from repro.nn.graph import GraphBuilder
from repro.obs import RunObservation, TuningObserver
from repro.pipeline.compiler import DeploymentCompiler
from repro.pipeline.records import RecordStore

PROPERTY = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

#: compiles are much more expensive than bare scheduler runs
COMPILE_PROPERTY = settings(
    max_examples=6,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def _tasks(n):
    return [FleetTask(key=f"t{i:03d}", seq=i) for i in range(n)]


class TestSchedulerProperties:
    @PROPERTY
    @given(
        n_tasks=st.integers(min_value=0, max_value=40),
        n_devices=st.integers(min_value=1, max_value=5),
        jobs=st.integers(min_value=1, max_value=8),
    )
    def test_partition_no_task_lost_none_run_twice(
        self, n_tasks, n_devices, jobs
    ):
        fleet = Fleet.build(
            (["gtx1080ti", "titanv", "gtx1080ti", "teslav100", "titanv"])[
                :n_devices
            ]
        )
        executions = Counter()

        def run_task(task, _device):
            executions[task.key] += 1
            return task.seq * 7

        result = FleetScheduler(fleet, run_task, jobs=jobs).run(
            _tasks(n_tasks)
        )
        # no task lost, none run twice
        assert result.results == {
            f"t{i:03d}": i * 7 for i in range(n_tasks)
        }
        assert all(count == 1 for count in executions.values())
        assert len(executions) == n_tasks
        # the home partition is pure round-robin, whatever the schedule
        for report in result.reports:
            assert report.homed == [
                f"t{i:03d}"
                for i in range(n_tasks)
                if i % n_devices == report.index
            ]
        executed = [k for r in result.reports for k in r.executed]
        assert sorted(executed) == sorted(result.results)
        assert sum(r.stolen_in for r in result.reports) == len(result.steals)
        assert sum(r.stolen_out for r in result.reports) == len(result.steals)

    @PROPERTY
    @given(
        n_tasks=st.integers(min_value=1, max_value=30),
        n_devices=st.integers(min_value=1, max_value=4),
        jobs=st.integers(min_value=1, max_value=4),
        crash=st.integers(min_value=0, max_value=999),
    )
    def test_crash_then_resume_equals_uninterrupted(
        self, n_tasks, n_devices, jobs, crash
    ):
        crash_key = f"t{crash % n_tasks:03d}"
        fleet = Fleet.build(["gtx1080ti"] * n_devices)
        tasks = _tasks(n_tasks)
        uninterrupted = {t.key: t.seq * 3 for t in tasks}

        done = {}  # stands in for the on-disk .done files
        executions = Counter()

        def crashing(task, _device):
            if task.key == crash_key:
                raise RuntimeError("worker killed")
            executions[task.key] += 1
            done[task.key] = task.seq * 3
            return task.seq * 3

        with pytest.raises(FleetError) as excinfo:
            FleetScheduler(fleet, crashing, jobs=jobs).run(tasks)
        assert set(excinfo.value.failures) == {crash_key}
        partial = excinfo.value.partial.results
        assert partial == {k: uninterrupted[k] for k in partial}

        def resuming(task, _device):
            if task.key in done:
                return done[task.key]
            executions[task.key] += 1
            done[task.key] = task.seq * 3
            return task.seq * 3

        result = FleetScheduler(fleet, resuming, jobs=jobs).run(tasks)
        assert result.results == uninterrupted
        # across crash + resume, every task ran exactly once
        assert all(count == 1 for count in executions.values())
        assert len(executions) == n_tasks


class _CrashingObserver(TuningObserver):
    """An observer sink that kills its worker after N events."""

    def __init__(self, after: int):
        super().__init__(enable_metrics=False, enable_trace=False)
        self.after = after
        self.seen = 0

    def __call__(self, tuner, event) -> None:
        super().__call__(tuner, event)
        self.seen += 1
        if self.seen >= self.after:
            raise RuntimeError("simulated worker crash")


# checkpointed sink state is keyed by class name; a real SIGKILL leaves
# ordinary observer state behind, so the crash shim must too
_CrashingObserver.__name__ = "TuningObserver"


class _CrashingObservation(RunObservation):
    def __init__(self, crash_key: str, after: int):
        super().__init__(enable_metrics=False, enable_trace=False)
        self.crash_key = crash_key
        self.after = after

    def observer(self, key: str) -> TuningObserver:
        if key == self.crash_key and key not in self._observers:
            self._observers[key] = _CrashingObserver(self.after)
        return super().observer(key)


def _model():
    b = GraphBuilder("fleet-prop")
    b.input((1, 3, 16, 16))
    b.conv2d("c1", 8, padding=(1, 1))
    b.relu("r1")
    b.conv2d("c2", 12, padding=(1, 1))
    b.relu("r2")
    b.flatten("f")
    b.dense("fc", 10)
    return b.graph


def _compile(ckpt_dir, fault_rate, observation=None, resume=False):
    compiler = DeploymentCompiler(_model(), env_seed=123)
    store = RecordStore()
    faults = (
        FaultModel(rate=fault_rate, seed=5) if fault_rate > 0 else None
    )
    compiler.tune(
        "random",
        n_trial=12,
        early_stopping=None,
        tuner_kwargs=dict(batch_size=4),
        record_store=store,
        faults=faults,
        checkpoint_dir=ckpt_dir,
        resume=resume,
        observation=observation,
        fleet="gtx1080ti,titanv",
        fleet_jobs=2,
    )
    summaries = None
    if observation is not None:
        summaries = {
            key: observation.observer(key).summary().deterministic_dict()
            for key in observation.keys()
        }
    return [json.loads(r.to_json()) for r in store], summaries


class TestCompilerCrashResume:
    @COMPILE_PROPERTY
    @given(
        crash_task=st.integers(min_value=0, max_value=1),
        # a 12-trial run emits comfortably more than 10 events, so the
        # crash always fires, anywhere from the step-0 checkpoint on
        after=st.integers(min_value=1, max_value=10),
        fault_rate=st.sampled_from([0.0, 0.3]),
    )
    def test_fleet_resume_bit_identical(
        self, tmp_path_factory, crash_task, after, fault_rate
    ):
        tmp = tmp_path_factory.mktemp("fleet-crash")
        baseline = _compile(
            tmp / "base", fault_rate,
            observation=RunObservation(
                enable_metrics=False, enable_trace=False
            ),
        )
        crash_key = f"task-{crash_task:03d}"
        crashing = _CrashingObservation(crash_key, after)
        with pytest.raises(FleetError) as excinfo:
            _compile(tmp / "run", fault_rate, observation=crashing)
        assert crash_key in excinfo.value.failures
        # the interrupted run left per-device checkpoint files behind
        assert list((tmp / "run").glob("device-*/task-*")), (
            "no checkpoint files survived the crash"
        )
        resumed = _compile(
            tmp / "run", fault_rate,
            observation=RunObservation(
                enable_metrics=False, enable_trace=False
            ),
            resume=True,
        )
        assert resumed == baseline
