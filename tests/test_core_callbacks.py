"""Tests for repro.core.callbacks."""

import io
import logging

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.callbacks import LogProgress, ProgressBar, RecordToStore
from repro.core.tuners.random import RandomTuner
from repro.pipeline.records import RecordStore


class _FakeTuner:
    name = "fake"
    best_gflops = 1.0


class TestRecordToStore:
    def test_records_everything(self, small_task):
        store = RecordStore()
        tuner = RandomTuner(small_task, seed=0, batch_size=8)
        result = tuner.tune(
            n_trial=24, early_stopping=None, callbacks=[RecordToStore(store)]
        )
        assert len(store) == result.num_measurements

    def test_best_record_matches_tuner(self, small_task):
        store = RecordStore()
        tuner = RandomTuner(small_task, seed=0, batch_size=8)
        result = tuner.tune(
            n_trial=24, early_stopping=None, callbacks=[RecordToStore(store)]
        )
        best = store.best_for(small_task.workload)
        assert best is not None
        assert best.config_index == result.best_index
        assert best.gflops == pytest.approx(result.best_gflops)


class TestProgressBar:
    def test_renders_and_fills(self, small_task):
        stream = io.StringIO()
        bar = ProgressBar(total=16, width=10, stream=stream)
        tuner = RandomTuner(small_task, seed=0, batch_size=8)
        tuner.tune(n_trial=16, early_stopping=None, callbacks=[bar])
        output = stream.getvalue()
        assert "16/16" in output
        assert "best=" in output
        assert bar.render().startswith("[##########]")

    def test_validation(self):
        with pytest.raises(ValueError):
            ProgressBar(total=0)

    def test_partial_run_still_terminates_line(self, small_task):
        # budget smaller than the bar total: the bar never fills, but
        # Tuner.tune's finally block calls close() so the line ends
        stream = io.StringIO()
        bar = ProgressBar(total=64, width=10, stream=stream)
        tuner = RandomTuner(small_task, seed=0, batch_size=8)
        tuner.tune(n_trial=16, early_stopping=None, callbacks=[bar])
        assert stream.getvalue().endswith("\n")
        assert not bar._line_open

    def test_close_is_idempotent(self):
        stream = io.StringIO()
        bar = ProgressBar(total=8, stream=stream)
        bar(_FakeTuner(), [object()] * 4)
        bar.close()
        before = stream.getvalue()
        bar.close()
        assert stream.getvalue() == before
        assert before.count("\n") == 1

    def test_state_roundtrip(self):
        bar = ProgressBar(total=8, stream=io.StringIO())
        bar(_FakeTuner(), [object()] * 3)
        fresh = ProgressBar(total=8, stream=io.StringIO())
        fresh.load_state_dict(bar.state_dict())
        assert fresh._count == 3
        assert "3/8" in fresh.render()


class TestLogProgress:
    def test_runs_without_error(self, small_task):
        callback = LogProgress(interval=8)
        tuner = RandomTuner(small_task, seed=0, batch_size=8)
        tuner.tune(n_trial=16, early_stopping=None, callbacks=[callback])
        assert callback._count == 16

    def test_validation(self):
        with pytest.raises(ValueError):
            LogProgress(interval=0)

    def test_state_roundtrip(self):
        callback = LogProgress(interval=4)
        callback._count = 9
        fresh = LogProgress(interval=4)
        fresh.load_state_dict(callback.state_dict())
        assert fresh._count == 9

    @staticmethod
    def _drive(callback, batches):
        """Feed batches through the callback, returning emitted records."""
        records = []

        class _Capture(logging.Handler):
            def emit(self, record):
                records.append(record)

        handler = _Capture(level=logging.INFO)
        target = logging.getLogger("repro.core.callbacks")
        old_level = target.level
        target.addHandler(handler)
        target.setLevel(logging.INFO)
        try:
            for batch in batches:
                callback(_FakeTuner(), [object()] * batch)
        finally:
            target.removeHandler(handler)
            target.setLevel(old_level)
        return records

    @given(
        batches=st.lists(st.integers(1, 50), max_size=30),
        interval=st.integers(1, 20),
    )
    @settings(deadline=None)  # timing under full-suite load is noisy
    def test_lines_equal_interval_crossings(self, batches, interval):
        # the contract: after n measurements, exactly n // interval
        # lines were emitted, one per crossed boundary, no matter how
        # the measurements were batched
        records = self._drive(LogProgress(interval=interval), batches)
        total = sum(batches)
        assert len(records) == total // interval
        boundaries = [r.args[1] for r in records]
        assert boundaries == [
            interval * i for i in range(1, total // interval + 1)
        ]

    def test_multi_interval_batch_emits_every_boundary(self):
        records = self._drive(LogProgress(interval=4), [13])
        assert [r.args[1] for r in records] == [4, 8, 12]
