"""Tests for repro.core.callbacks."""

import io

import pytest

from repro.core.callbacks import LogProgress, ProgressBar, RecordToStore
from repro.core.tuners.random import RandomTuner
from repro.pipeline.records import RecordStore


class TestRecordToStore:
    def test_records_everything(self, small_task):
        store = RecordStore()
        tuner = RandomTuner(small_task, seed=0, batch_size=8)
        result = tuner.tune(
            n_trial=24, early_stopping=None, callbacks=[RecordToStore(store)]
        )
        assert len(store) == result.num_measurements

    def test_best_record_matches_tuner(self, small_task):
        store = RecordStore()
        tuner = RandomTuner(small_task, seed=0, batch_size=8)
        result = tuner.tune(
            n_trial=24, early_stopping=None, callbacks=[RecordToStore(store)]
        )
        best = store.best_for(small_task.workload)
        assert best is not None
        assert best.config_index == result.best_index
        assert best.gflops == pytest.approx(result.best_gflops)


class TestProgressBar:
    def test_renders_and_fills(self, small_task):
        stream = io.StringIO()
        bar = ProgressBar(total=16, width=10, stream=stream)
        tuner = RandomTuner(small_task, seed=0, batch_size=8)
        tuner.tune(n_trial=16, early_stopping=None, callbacks=[bar])
        output = stream.getvalue()
        assert "16/16" in output
        assert "best=" in output
        assert bar.render().startswith("[##########]")

    def test_validation(self):
        with pytest.raises(ValueError):
            ProgressBar(total=0)


class TestLogProgress:
    def test_runs_without_error(self, small_task):
        callback = LogProgress(interval=8)
        tuner = RandomTuner(small_task, seed=0, batch_size=8)
        tuner.tune(n_trial=16, early_stopping=None, callbacks=[callback])
        assert callback._count == 16

    def test_validation(self):
        with pytest.raises(ValueError):
            LogProgress(interval=0)
