"""Unit tests for the fleet layer: devices, scheduler, reporting.

The work-stealing schedule itself is only deterministic for one worker
thread, so the exact-order assertions here pin the ``jobs=1`` drain;
the multi-threaded runs assert the schedule-independent facts (every
task executed exactly once, results correct, accounting consistent).
"""

import json

import pytest

from repro.fleet import (
    DeviceReport,
    Fleet,
    FleetDevice,
    FleetError,
    FleetRunResult,
    FleetScheduler,
    FleetTask,
    StealRecord,
    device_ordinal_spans,
    fleet_report_dict,
    parse_device,
    parse_fleet,
    write_device_summaries,
    write_fleet_report,
)
from repro.hardware.device import GTX_1080_TI, TITAN_V
from repro.hardware.faults import FaultModel
from repro.obs import RunSummary


def _tasks(n):
    return [FleetTask(key=f"t{i:02d}", seq=i) for i in range(n)]


class TestFleetDevice:
    def test_rejects_negative_index(self):
        with pytest.raises(ValueError):
            FleetDevice(index=-1)

    @pytest.mark.parametrize("rate", [-0.1, 1.0, 2.0])
    def test_rejects_bad_fault_rate(self, rate):
        with pytest.raises(ValueError):
            FleetDevice(index=0, fault_rate=rate)

    def test_dirname_and_label(self):
        dev = FleetDevice(index=3, device=TITAN_V)
        assert dev.dirname == "device-03"
        assert dev.label == "titanv"

    def test_fault_model_inherits_default(self):
        default = FaultModel(rate=0.2, seed=9)
        assert FleetDevice(index=0).fault_model(default) is default

    def test_fault_model_override_keeps_default_seed(self):
        default = FaultModel(rate=0.2, seed=9)
        model = FleetDevice(index=0, fault_rate=0.5).fault_model(default)
        assert model.rate == 0.5
        assert model.seed == 9

    def test_fault_model_own_seed_wins(self):
        model = FleetDevice(
            index=0, fault_rate=0.5, fault_seed=3
        ).fault_model(FaultModel(rate=0.2, seed=9))
        assert model.seed == 3

    def test_fault_model_explicit_zero_disables(self):
        default = FaultModel(rate=0.2, seed=9)
        assert FleetDevice(index=0, fault_rate=0.0).fault_model(default) is None


class TestFleet:
    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            Fleet(devices=())

    def test_rejects_index_mismatch(self):
        with pytest.raises(ValueError):
            Fleet(devices=(FleetDevice(index=1),))

    def test_home_of_round_robin(self):
        fleet = Fleet.build(["gtx1080ti", "titanv"])
        assert [fleet.home_of(i).index for i in range(5)] == [0, 1, 0, 1, 0]
        with pytest.raises(ValueError):
            fleet.home_of(-1)

    def test_build_accepts_mixed_items(self):
        fleet = Fleet.build(
            ["titanv", GTX_1080_TI, FleetDevice(index=0, fault_rate=0.1)]
        )
        assert len(fleet) == 3
        assert fleet[0].device is TITAN_V
        assert fleet[1].device is GTX_1080_TI
        # prepared slots are re-indexed to their position
        assert fleet[2].index == 2
        assert fleet[2].fault_rate == 0.1

    def test_from_spec_passthrough_and_errors(self):
        fleet = Fleet.build(["gtx1080ti"])
        assert Fleet.from_spec(fleet) is fleet
        assert len(Fleet.from_spec("gtx1080ti,titanv")) == 2
        with pytest.raises(TypeError):
            Fleet.from_spec(7)


class TestParsing:
    def test_parse_fleet_with_rates(self):
        fleet = parse_fleet("gtx1080ti, gtx1080ti:0.1 ,titanv")
        assert [d.label for d in fleet] == [
            "geforcegtx1080ti", "geforcegtx1080ti", "titanv",
        ]
        assert [d.fault_rate for d in fleet] == [None, 0.1, None]

    def test_parse_device_bad_rate(self):
        with pytest.raises(ValueError):
            parse_device("gtx1080ti:fast", 0)

    def test_parse_fleet_empty(self):
        with pytest.raises(ValueError):
            parse_fleet(" , ")

    def test_parse_unknown_device(self):
        with pytest.raises(ValueError):
            parse_fleet("gtx9999")


class TestSchedulerSerial:
    def test_jobs_one_steal_schedule_is_deterministic(self):
        fleet = Fleet.build(["gtx1080ti"] * 3)
        executed = []
        scheduler = FleetScheduler(
            fleet, lambda t, d: executed.append((t.key, d.index)) or t.key,
            jobs=1,
        )
        result = scheduler.run(_tasks(7))
        # worker 0 drains its own queue FIFO, then steals LIFO from the
        # longest queue (ties -> lowest device index)
        assert [key for key, _ in executed] == [
            "t00", "t03", "t06", "t04", "t05", "t01", "t02",
        ]
        assert all(index == 0 for _, index in executed)
        assert result.steals == [
            StealRecord(key="t04", victim=1, thief=0),
            StealRecord(key="t05", victim=2, thief=0),
            StealRecord(key="t01", victim=1, thief=0),
            StealRecord(key="t02", victim=2, thief=0),
        ]
        assert result.reports[0].stolen_in == 4
        assert result.reports[1].stolen_out == 2
        assert result.reports[2].stolen_out == 2

    def test_homed_partition_and_assignments(self):
        fleet = Fleet.build(["gtx1080ti", "titanv"])
        scheduler = FleetScheduler(fleet, lambda t, d: t.seq, jobs=1)
        result = scheduler.run(_tasks(5))
        assert result.reports[0].homed == ["t00", "t02", "t04"]
        assert result.reports[1].homed == ["t01", "t03"]
        assert result.assignments == {
            "t00": 0, "t01": 1, "t02": 0, "t03": 1, "t04": 0,
        }

    def test_duplicate_keys_rejected(self):
        scheduler = FleetScheduler(
            Fleet.build(["gtx1080ti"]), lambda t, d: None
        )
        with pytest.raises(ValueError):
            scheduler.run(
                [FleetTask(key="a", seq=0), FleetTask(key="a", seq=1)]
            )

    def test_empty_run(self):
        scheduler = FleetScheduler(
            Fleet.build(["gtx1080ti"] * 2), lambda t, d: None
        )
        result = scheduler.run([])
        assert result.results == {}
        assert result.steals == []

    def test_jobs_validation(self):
        with pytest.raises(ValueError):
            FleetScheduler(Fleet.build(["gtx1080ti"]), lambda t, d: None,
                           jobs=0)

    def test_failure_raises_with_partial_results(self):
        fleet = Fleet.build(["gtx1080ti"] * 2)

        def run_task(task, _device):
            if task.key == "t02":
                raise RuntimeError("boom")
            return task.seq

        scheduler = FleetScheduler(fleet, run_task, jobs=1)
        with pytest.raises(FleetError) as excinfo:
            scheduler.run(_tasks(4))
        err = excinfo.value
        assert set(err.failures) == {"t02"}
        assert isinstance(err.failures["t02"], RuntimeError)
        # worker 0 ran t00 before reaching t02; nothing after the abort
        assert err.partial.results == {"t00": 0}


class TestSchedulerThreaded:
    @pytest.mark.parametrize("jobs", [2, 3, 8])
    def test_all_tasks_execute_exactly_once(self, jobs):
        fleet = Fleet.build(["gtx1080ti", "gtx1080ti", "titanv"])
        scheduler = FleetScheduler(fleet, lambda t, d: t.seq * 2, jobs=jobs)
        result = scheduler.run(_tasks(20))
        assert result.results == {f"t{i:02d}": i * 2 for i in range(20)}
        executed = [k for r in result.reports for k in r.executed]
        assert sorted(executed) == sorted(result.results)
        assert len(result.steals) == sum(
            r.stolen_in for r in result.reports
        )
        assert sum(r.stolen_in for r in result.reports) == sum(
            r.stolen_out for r in result.reports
        )

    def test_threaded_failure_still_raises(self):
        fleet = Fleet.build(["gtx1080ti"] * 4)

        def run_task(task, _device):
            if task.seq == 5:
                raise ValueError("bad cell")
            return task.key

        with pytest.raises(FleetError):
            FleetScheduler(fleet, run_task, jobs=4).run(_tasks(12))


class TestReporting:
    def _result(self):
        fleet = Fleet.build(["gtx1080ti", "titanv"])
        scheduler = FleetScheduler(fleet, lambda t, d: t.seq, jobs=1)
        return scheduler.run(_tasks(4))

    def test_device_ordinal_spans_concatenate(self):
        result = self._result()
        spans = device_ordinal_spans(
            result, {"t00": 10, "t01": 7, "t02": 5, "t03": 3}
        )
        assert spans[0] == [("t00", 0, 10), ("t02", 10, 15)]
        assert spans[1] == [("t01", 0, 7), ("t03", 7, 10)]
        assert result.reports[0].measurements == 15
        assert result.reports[1].measurements == 10

    def test_report_dict_shape(self):
        result = self._result()
        report = fleet_report_dict(result, {f"t{i:02d}": 4 for i in range(4)})
        assert report["tasks"] == 4
        assert [d["index"] for d in report["devices"]] == [0, 1]
        assert report["assignments"]["t03"] == 1
        assert report["devices"][0]["ordinal_spans"] == [
            ["t00", 0, 4], ["t02", 4, 8],
        ]

    def test_write_fleet_report_round_trips(self, tmp_path):
        result = self._result()
        path = tmp_path / "fleet.json"
        write_fleet_report(path, result, {f"t{i:02d}": 1 for i in range(4)})
        assert json.loads(path.read_text()) == fleet_report_dict(
            result, {f"t{i:02d}": 1 for i in range(4)}
        )

    def test_write_device_summaries_aggregates(self, tmp_path):
        result = self._result()
        summaries = {
            f"t{i:02d}": RunSummary(
                task=f"t{i:02d}", arm="random", num_measurements=4,
                best_gflops=float(i),
            )
            for i in range(4)
        }
        aggregate = write_device_summaries(tmp_path, result, summaries)
        files = sorted(p.name for p in tmp_path.glob("cell-*.summary.json"))
        assert files == [
            "cell-00-device.summary.json", "cell-01-device.summary.json",
        ]
        per_device = json.loads((tmp_path / files[0]).read_text())
        assert per_device["device"] == "GeForce GTX 1080 Ti"
        assert [t["task"] for t in per_device["tasks"]] == ["t00", "t02"]
        assert aggregate["runs"] == 4
        assert aggregate["num_measurements"] == 16
        assert json.loads(
            (tmp_path / "summary.json").read_text()
        ) == aggregate
