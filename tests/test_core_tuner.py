"""Tests for repro.core.tuner: records, early stopping, the tune loop."""

import numpy as np
import pytest

from repro.core.tuner import (
    EarlyStopper,
    SpaceSamplingError,
    Tuner,
    TuningResult,
    TrialRecord,
)
from repro.core.tuners.random import RandomTuner


class TestEarlyStopper:
    def test_stops_after_patience(self):
        stopper = EarlyStopper(patience=3)
        assert not stopper.update(10.0)
        assert not stopper.update(5.0)
        assert not stopper.update(5.0)
        assert stopper.update(5.0)  # 3 steps since the best at step 1

    def test_improvement_resets(self):
        stopper = EarlyStopper(patience=3)
        stopper.update(10.0)
        stopper.update(5.0)
        stopper.update(11.0)  # new best
        assert not stopper.update(5.0)
        assert not stopper.update(5.0)
        assert stopper.update(5.0)

    def test_min_delta(self):
        stopper = EarlyStopper(patience=2, min_delta=1.0)
        stopper.update(10.0)
        stopper.update(10.5)  # below min_delta: not an improvement
        assert stopper.update(10.9)

    def test_bad_patience(self):
        with pytest.raises(ValueError):
            EarlyStopper(patience=0)


class TestTuningResult:
    def make(self, gflops_list):
        records = [
            TrialRecord(step=i + 1, config_index=i, gflops=g)
            for i, g in enumerate(gflops_list)
        ]
        return TuningResult(
            task_name="t",
            tuner_name="x",
            records=records,
            best_index=int(np.argmax(gflops_list)),
            best_gflops=max(gflops_list),
        )

    def test_best_curve_monotone(self):
        result = self.make([1.0, 5.0, 3.0, 7.0, 2.0])
        curve = result.best_curve()
        assert (np.diff(curve) >= 0).all()
        assert curve[-1] == 7.0
        assert curve[0] == 1.0

    def test_gflops_series(self):
        result = self.make([1.0, 0.0, 2.0])
        assert result.gflops_series().tolist() == [1.0, 0.0, 2.0]

    def test_best_curve_matches_reference_loop(self):
        """The vectorized curve equals the original Python loop."""
        rng = np.random.default_rng(42)
        for trial in range(20):
            series = rng.normal(5.0, 4.0, size=rng.integers(1, 60)).tolist()
            result = self.make(series)
            best, reference = 0.0, []
            for gflops in series:
                best = max(best, gflops)
                reference.append(best)
            assert result.best_curve().tolist() == reference

    def test_best_curve_floors_errored_trials(self):
        # errored trials report 0 GFLOPS; negatives must never leak
        result = self.make([-3.0, -1.0, 2.0])
        assert result.best_curve().tolist() == [0.0, 0.0, 2.0]

    def test_best_curve_empty(self):
        result = TuningResult(
            task_name="t",
            tuner_name="x",
            records=[],
            best_index=None,
            best_gflops=0.0,
        )
        assert result.best_curve().shape == (0,)

    def test_num_measurements(self):
        assert self.make([1.0] * 7).num_measurements == 7

    def test_repr(self):
        assert "best=" in repr(self.make([3.0]))


class TestTuneLoop:
    def test_budget_respected(self, small_task):
        tuner = RandomTuner(small_task, seed=0, batch_size=16)
        result = tuner.tune(n_trial=50, early_stopping=None)
        assert result.num_measurements == 50

    def test_no_duplicate_configs(self, small_task):
        tuner = RandomTuner(small_task, seed=0, batch_size=16)
        result = tuner.tune(n_trial=100, early_stopping=None)
        indices = [r.config_index for r in result.records]
        assert len(set(indices)) == len(indices)

    def test_early_stopping_cuts_run_short(self, dense_task):
        tuner = RandomTuner(dense_task, seed=0, batch_size=8)
        result = tuner.tune(n_trial=10_000, early_stopping=30)
        assert result.num_measurements < 10_000

    def test_best_matches_records(self, small_task):
        tuner = RandomTuner(small_task, seed=1, batch_size=16)
        result = tuner.tune(n_trial=64, early_stopping=None)
        best_record = max(result.records, key=lambda r: r.gflops)
        assert result.best_gflops == best_record.gflops
        assert result.best_index == best_record.config_index

    def test_callbacks_see_all_measurements(self, small_task):
        seen = []

        def callback(tuner, results):
            seen.extend(results)

        tuner = RandomTuner(small_task, seed=0, batch_size=16)
        result = tuner.tune(n_trial=48, early_stopping=None,
                            callbacks=[callback])
        assert len(seen) == result.num_measurements

    def test_exhausts_tiny_space(self):
        from repro.hardware.measure import SimulatedTask
        from repro.nn.workloads import DenseWorkload

        task = SimulatedTask(DenseWorkload(1, 4, 4), seed=0)
        tuner = RandomTuner(task, seed=0, batch_size=8)
        result = tuner.tune(n_trial=10_000, early_stopping=None)
        assert result.num_measurements == len(task.space)

    def test_invalid_n_trial(self, small_task):
        with pytest.raises(ValueError):
            RandomTuner(small_task, seed=0).tune(n_trial=0)

    def test_deterministic_given_seed(self, small_task):
        a = RandomTuner(small_task, seed=9).tune(n_trial=32,
                                                 early_stopping=None)
        b = RandomTuner(small_task, seed=9).tune(n_trial=32,
                                                 early_stopping=None)
        assert [r.config_index for r in a.records] == [
            r.config_index for r in b.records
        ]
        assert a.best_gflops == b.best_gflops

    def test_subclass_contract_enforced(self, small_task):
        tuner = Tuner(small_task, seed=0)
        with pytest.raises(NotImplementedError):
            tuner.tune(n_trial=4)


class TestRandomUnvisitedSampling:
    """Rejection-sampling fallback: honest exhaustion vs budget overrun.

    A short draw used to be silently truncated, making the main loop
    misreport a saturated-but-unfinished space as exhausted; now an
    exhausted attempt budget with unvisited configs provably remaining
    raises :class:`SpaceSamplingError` with a full diagnostic.
    """

    def _tiny_tuner(self):
        from repro.hardware.measure import SimulatedTask
        from repro.nn.workloads import DenseWorkload

        task = SimulatedTask(DenseWorkload(1, 4, 4), seed=0)
        return RandomTuner(task, seed=0, batch_size=8), task

    def test_budget_overrun_raises_with_diagnostic(self):
        tuner, task = self._tiny_tuner()
        with pytest.raises(SpaceSamplingError) as excinfo:
            tuner._random_unvisited(4, max_attempts=0)
        message = str(excinfo.value)
        assert task.name in message
        assert tuner.name in message
        assert "0 attempts" in message

    def test_near_exhausted_space_returns_remainder(self):
        tuner, task = self._tiny_tuner()
        remainder = {0, 1}
        tuner.visited = set(range(len(task.space))) - remainder
        out = tuner._random_unvisited(8)
        assert len(out) == len(remainder)
        assert set(out) == remainder

    def test_fully_visited_space_returns_empty_without_raising(self):
        tuner, task = self._tiny_tuner()
        tuner.visited = set(range(len(task.space)))
        assert tuner._random_unvisited(8) == []
        # even with no attempt budget at all: nothing remains to draw
        assert tuner._random_unvisited(8, max_attempts=0) == []

    def test_normal_draw_is_exact_and_unvisited(self):
        tuner, task = self._tiny_tuner()
        tuner.visited = {0, 1, 2}
        out = tuner._random_unvisited(4)
        assert len(out) == 4
        assert len(set(out)) == 4
        assert not set(out) & tuner.visited
