"""Tests for repro.nn.graph: construction, shape inference, stats."""

import pytest

from repro.nn.graph import Graph, GraphBuilder
from repro.nn.layers import Conv2D, Input, ReLU, ShapeError


def tiny_graph() -> Graph:
    b = GraphBuilder("tiny")
    b.input((1, 3, 8, 8))
    b.conv2d("c1", 8, kernel=(3, 3), padding=(1, 1))
    b.relu("r1")
    return b.graph


class TestConstruction:
    def test_add_returns_sequential_ids(self):
        g = Graph()
        i0 = g.add(Input(name="in", shape=(1, 3, 8, 8)))
        i1 = g.add(ReLU(name="r"), [i0])
        assert (i0, i1) == (0, 1)

    def test_duplicate_name_rejected(self):
        g = Graph()
        g.add(Input(name="in", shape=(1, 3, 8, 8)))
        with pytest.raises(ValueError, match="duplicate"):
            g.add(Input(name="in", shape=(1, 3, 8, 8)))

    def test_dangling_input_rejected(self):
        g = Graph()
        with pytest.raises(ValueError, match="unknown node"):
            g.add(ReLU(name="r"), [5])

    def test_len_and_iter(self):
        g = tiny_graph()
        assert len(g) == 3
        assert [n.op for n in g] == ["input", "conv2d", "relu"]

    def test_node_by_name(self):
        g = tiny_graph()
        assert g.node_by_name("c1").op == "conv2d"
        with pytest.raises(KeyError):
            g.node_by_name("nope")


class TestTopology:
    def test_topological_order_is_insertion(self):
        g = tiny_graph()
        order = [n.node_id for n in g.topological_order()]
        assert order == [0, 1, 2]

    def test_consumers(self):
        g = tiny_graph()
        assert g.consumers(0) == [1]
        assert g.consumers(2) == []

    def test_output_nodes(self):
        g = tiny_graph()
        outs = g.output_nodes()
        assert [n.name for n in outs] == ["r1"]

    def test_branching_outputs(self):
        b = GraphBuilder("branch")
        src = b.input((1, 4, 4, 4))
        b.relu("a", source=src)
        b.relu("b", source=src)
        outs = {n.name for n in b.graph.output_nodes()}
        assert outs == {"a", "b"}


class TestShapeInference:
    def test_infer_shapes(self):
        g = tiny_graph()
        g.infer_shapes()
        assert g[1].output_shape == (1, 8, 8, 8)
        assert g[2].output_shape == (1, 8, 8, 8)

    def test_idempotent(self):
        g = tiny_graph()
        g.infer_shapes()
        g.infer_shapes()
        assert g[2].output_shape == (1, 8, 8, 8)

    def test_propagates_layer_error(self):
        b = GraphBuilder("bad")
        b.input((1, 3, 4, 4))
        b.conv2d("c", 8, kernel=(9, 9))
        with pytest.raises(ShapeError):
            b.graph.infer_shapes()

    def test_input_shapes_of(self):
        g = tiny_graph()
        assert g.input_shapes_of(g[1]) == [(1, 3, 8, 8)]


class TestStats:
    def test_total_flops_matches_manual(self):
        g = tiny_graph()
        conv_flops = 2 * 3 * 3 * 3 * 8 * 8 * 8
        relu_flops = 1 * 8 * 8 * 8
        assert g.total_flops() == conv_flops + relu_flops

    def test_total_params(self):
        g = tiny_graph()
        assert g.total_params() == 8 * 3 * 9 + 8

    def test_summary_mentions_everything(self):
        text = tiny_graph().summary()
        assert "conv2d" in text
        assert "GFLOPs" in text


class TestBuilder:
    def test_cursor_tracks_last(self):
        b = GraphBuilder()
        b.input((1, 3, 8, 8))
        cid = b.conv2d("c", 4, padding=(1, 1))
        assert b.cursor == cid

    def test_cursor_on_empty_graph(self):
        with pytest.raises(ValueError):
            GraphBuilder().cursor

    def test_explicit_source(self):
        b = GraphBuilder()
        src = b.input((1, 4, 8, 8))
        b.relu("r1")
        b.relu("r2", source=src)
        assert b.graph.node_by_name("r2").inputs == (src,)

    def test_add_and_concat(self):
        b = GraphBuilder()
        src = b.input((1, 4, 8, 8))
        a = b.relu("a", source=src)
        c = b.relu("b", source=src)
        b.add("sum", a, c)
        b.concat("cat", [a, c])
        g = b.graph
        g.infer_shapes()
        assert g.node_by_name("sum").output_shape == (1, 4, 8, 8)
        assert g.node_by_name("cat").output_shape == (1, 8, 8, 8)
