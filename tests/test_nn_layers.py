"""Tests for repro.nn.layers: shape inference and bookkeeping."""

import pytest

from repro.nn.layers import (
    Add,
    BatchNorm,
    Concat,
    Conv2D,
    Dense,
    DepthwiseConv2D,
    Dropout,
    Flatten,
    GlobalAvgPool,
    Input,
    LRN,
    Pool2D,
    ReLU,
    ShapeError,
    Softmax,
)


class TestInput:
    def test_shape_passthrough(self):
        layer = Input(name="in", shape=(1, 3, 8, 8))
        assert layer.infer_shape([]) == (1, 3, 8, 8)

    def test_rejects_inputs(self):
        layer = Input(name="in", shape=(1, 3, 8, 8))
        with pytest.raises(ShapeError):
            layer.infer_shape([(1, 3, 8, 8)])


class TestConv2D:
    def test_basic_shape(self):
        layer = Conv2D(name="c", out_channels=16, kernel=(3, 3), padding=(1, 1))
        assert layer.infer_shape([(1, 8, 14, 14)]) == (1, 16, 14, 14)

    def test_stride(self):
        layer = Conv2D(name="c", out_channels=16, kernel=(3, 3),
                       stride=(2, 2), padding=(1, 1))
        assert layer.infer_shape([(1, 8, 14, 14)]) == (1, 16, 7, 7)

    def test_kernel_too_big(self):
        layer = Conv2D(name="c", out_channels=4, kernel=(9, 9))
        with pytest.raises(ShapeError):
            layer.infer_shape([(1, 3, 8, 8)])

    def test_groups_must_divide(self):
        layer = Conv2D(name="c", out_channels=9, kernel=(1, 1), groups=3)
        with pytest.raises(ShapeError):
            layer.infer_shape([(1, 8, 8, 8)])

    def test_param_count_after_inference(self):
        layer = Conv2D(name="c", out_channels=16, kernel=(3, 3))
        layer.infer_shape([(1, 8, 14, 14)])
        assert layer.param_count() == 16 * 8 * 9 + 16

    def test_param_count_before_inference_fails(self):
        layer = Conv2D(name="c", out_channels=16)
        with pytest.raises(ShapeError):
            layer.param_count()

    def test_rank_check(self):
        layer = Conv2D(name="c", out_channels=4)
        with pytest.raises(ShapeError):
            layer.infer_shape([(1, 8)])

    def test_is_anchor(self):
        assert Conv2D(name="c", out_channels=4).is_anchor
        assert not Conv2D(name="c", out_channels=4).is_injective


class TestDepthwise:
    def test_shape(self):
        layer = DepthwiseConv2D(name="d", kernel=(3, 3), padding=(1, 1))
        assert layer.infer_shape([(1, 32, 14, 14)]) == (1, 32, 14, 14)

    def test_multiplier(self):
        layer = DepthwiseConv2D(
            name="d", kernel=(3, 3), padding=(1, 1), channel_multiplier=2
        )
        assert layer.infer_shape([(1, 8, 14, 14)]) == (1, 16, 14, 14)

    def test_params(self):
        layer = DepthwiseConv2D(name="d", kernel=(3, 3), padding=(1, 1))
        layer.infer_shape([(1, 8, 14, 14)])
        assert layer.param_count() == 8 * 9 + 8


class TestDense:
    def test_shape(self):
        layer = Dense(name="fc", out_features=10)
        assert layer.infer_shape([(4, 64)]) == (4, 10)

    def test_requires_rank2(self):
        layer = Dense(name="fc", out_features=10)
        with pytest.raises(ShapeError):
            layer.infer_shape([(1, 8, 4, 4)])

    def test_params(self):
        layer = Dense(name="fc", out_features=10)
        layer.infer_shape([(1, 64)])
        assert layer.param_count() == 64 * 10 + 10


class TestPooling:
    def test_max_pool(self):
        layer = Pool2D(name="p", kernel=(2, 2), stride=(2, 2))
        assert layer.infer_shape([(1, 8, 14, 14)]) == (1, 8, 7, 7)

    def test_ceil_mode(self):
        floor_pool = Pool2D(name="p", kernel=(3, 3), stride=(2, 2))
        ceil_pool = Pool2D(name="p", kernel=(3, 3), stride=(2, 2),
                           ceil_mode=True)
        assert floor_pool.infer_shape([(1, 8, 112, 112)]) == (1, 8, 55, 55)
        assert ceil_pool.infer_shape([(1, 8, 112, 112)]) == (1, 8, 56, 56)

    def test_invalid_mode(self):
        with pytest.raises(ValueError):
            Pool2D(name="p", mode="median")

    def test_global_avg(self):
        layer = GlobalAvgPool(name="g")
        assert layer.infer_shape([(1, 128, 7, 7)]) == (1, 128, 1, 1)


class TestInjectives:
    @pytest.mark.parametrize(
        "layer",
        [
            ReLU(name="r"),
            Dropout(name="d"),
            Softmax(name="s"),
        ],
    )
    def test_identity_shape(self, layer):
        assert layer.infer_shape([(1, 10)]) == (1, 10)
        assert layer.is_injective

    def test_batch_norm_preserves_and_counts_params(self):
        layer = BatchNorm(name="bn")
        assert layer.infer_shape([(1, 32, 7, 7)]) == (1, 32, 7, 7)
        assert layer.param_count() == 64

    def test_lrn_requires_4d(self):
        with pytest.raises(ShapeError):
            LRN(name="l").infer_shape([(1, 10)])

    def test_flatten(self):
        layer = Flatten(name="f")
        assert layer.infer_shape([(2, 8, 3, 3)]) == (2, 72)

    def test_flatten_needs_rank2(self):
        with pytest.raises(ShapeError):
            Flatten(name="f").infer_shape([(5,)])


class TestJoins:
    def test_concat(self):
        layer = Concat(name="c")
        out = layer.infer_shape([(1, 8, 7, 7), (1, 16, 7, 7)])
        assert out == (1, 24, 7, 7)

    def test_concat_mismatch(self):
        layer = Concat(name="c")
        with pytest.raises(ShapeError):
            layer.infer_shape([(1, 8, 7, 7), (1, 16, 6, 7)])

    def test_concat_needs_two(self):
        with pytest.raises(ShapeError):
            Concat(name="c").infer_shape([(1, 8, 7, 7)])

    def test_add(self):
        layer = Add(name="a")
        assert layer.infer_shape([(1, 8, 7, 7), (1, 8, 7, 7)]) == (1, 8, 7, 7)
        assert layer.is_injective

    def test_add_mismatch(self):
        with pytest.raises(ShapeError):
            Add(name="a").infer_shape([(1, 8, 7, 7), (1, 9, 7, 7)])

    def test_add_arity(self):
        with pytest.raises(ShapeError):
            Add(name="a").infer_shape([(1, 8, 7, 7)])
