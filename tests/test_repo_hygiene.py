"""Repository-consistency checks: docs, examples, and API inventory."""

import ast
import subprocess
import sys
from pathlib import Path

import pytest

ROOT = Path(__file__).parent.parent


class TestDocs:
    def test_required_documents_exist(self):
        for name in ("README.md", "DESIGN.md", "EXPERIMENTS.md"):
            path = ROOT / name
            assert path.exists(), name
            assert len(path.read_text()) > 1000, name

    def test_readme_lists_every_example(self):
        readme = (ROOT / "README.md").read_text()
        for script in (ROOT / "examples").glob("*.py"):
            assert script.name in readme, script.name

    def test_design_references_all_figures(self):
        design = (ROOT / "DESIGN.md").read_text()
        for key in ("Fig. 4", "Fig. 5", "Table I"):
            assert key in design

    def test_experiments_records_deviations(self):
        text = (ROOT / "EXPERIMENTS.md").read_text()
        assert "deviation" in text.lower()
        assert "GTX 1080" in text


class TestPublicApi:
    def test_package_all_resolves(self):
        import repro

        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_subpackage_alls_resolve(self):
        import importlib

        for module_name in (
            "repro.core",
            "repro.learning",
            "repro.nn",
            "repro.space",
            "repro.hardware",
            "repro.obs",
            "repro.pipeline",
            "repro.utils",
        ):
            module = importlib.import_module(module_name)
            for name in getattr(module, "__all__", []):
                assert hasattr(module, name), f"{module_name}.{name}"

    def test_main_module_runs(self):
        result = subprocess.run(
            [sys.executable, "-m", "repro", "models"],
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert result.returncode == 0
        assert "mobilenet-v1" in result.stdout


class TestSourceHygiene:
    def _source_files(self):
        return sorted((ROOT / "src" / "repro").rglob("*.py"))

    def test_every_module_has_a_docstring(self):
        for path in self._source_files():
            tree = ast.parse(path.read_text())
            assert ast.get_docstring(tree), f"{path} lacks a module docstring"

    def test_every_module_level_public_def_has_a_docstring(self):
        """Top-level public functions and classes must be documented.

        (Method overrides inherit their contract from the documented
        base-class method, so they are not enforced here.)
        """
        missing = []
        for path in self._source_files():
            tree = ast.parse(path.read_text())
            for node in ast.iter_child_nodes(tree):
                if isinstance(node, (ast.FunctionDef, ast.ClassDef)):
                    if node.name.startswith("_"):
                        continue
                    if not ast.get_docstring(node):
                        missing.append(f"{path.name}:{node.name}")
        assert not missing, missing

    def test_no_print_in_library_code(self):
        """The library logs; only the CLI may print."""
        allowed = {"cli.py"}
        offenders = []
        for path in self._source_files():
            if path.name in allowed:
                continue
            tree = ast.parse(path.read_text())
            for node in ast.walk(tree):
                if (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Name)
                    and node.func.id == "print"
                ):
                    offenders.append(f"{path.name}:{node.lineno}")
        assert not offenders, offenders
