"""Structural checks of zoo networks at well-known interior points."""

import pytest

from repro.nn.zoo import build_model


def shape_of(graph, name):
    graph.infer_shapes()
    return graph.node_by_name(name).output_shape


class TestAlexNetShapes:
    @pytest.fixture(scope="class")
    def graph(self):
        return build_model("alexnet")

    def test_conv1(self, graph):
        assert shape_of(graph, "conv1") == (1, 96, 55, 55)

    def test_pool1(self, graph):
        assert shape_of(graph, "pool1") == (1, 96, 27, 27)

    def test_conv5(self, graph):
        assert shape_of(graph, "conv5") == (1, 256, 13, 13)

    def test_pool5(self, graph):
        assert shape_of(graph, "pool5") == (1, 256, 6, 6)

    def test_fc6_input_is_9216(self, graph):
        assert shape_of(graph, "flatten") == (1, 9216)


class TestVggShapes:
    @pytest.fixture(scope="class")
    def graph(self):
        return build_model("vgg-16")

    @pytest.mark.parametrize(
        "name,shape",
        [
            ("pool1", (1, 64, 112, 112)),
            ("pool2", (1, 128, 56, 56)),
            ("pool3", (1, 256, 28, 28)),
            ("pool4", (1, 512, 14, 14)),
            ("pool5", (1, 512, 7, 7)),
        ],
    )
    def test_stage_outputs(self, graph, name, shape):
        assert shape_of(graph, name) == shape

    def test_flatten_is_25088(self, graph):
        assert shape_of(graph, "flatten") == (1, 25088)


class TestResNetShapes:
    @pytest.fixture(scope="class")
    def graph(self):
        return build_model("resnet-18")

    @pytest.mark.parametrize(
        "name,shape",
        [
            ("pool1", (1, 64, 56, 56)),
            ("layer1_block2_relu2", (1, 64, 56, 56)),
            ("layer2_block2_relu2", (1, 128, 28, 28)),
            ("layer3_block2_relu2", (1, 256, 14, 14)),
            ("layer4_block2_relu2", (1, 512, 7, 7)),
            ("gap", (1, 512, 1, 1)),
        ],
    )
    def test_stage_outputs(self, graph, name, shape):
        assert shape_of(graph, name) == shape

    def test_downsample_paths_exist(self, graph):
        for stage in (2, 3, 4):
            node = graph.node_by_name(f"layer{stage}_block1_downsample")
            assert node.op == "conv2d"


class TestMobileNetShapes:
    @pytest.fixture(scope="class")
    def graph(self):
        return build_model("mobilenet-v1")

    @pytest.mark.parametrize(
        "name,shape",
        [
            ("conv1", (1, 32, 112, 112)),
            ("block2_dw", (1, 64, 56, 56)),
            ("block6_pw", (1, 512, 14, 14)),
            ("block13_pw", (1, 1024, 7, 7)),
        ],
    )
    def test_block_outputs(self, graph, name, shape):
        assert shape_of(graph, name) == shape


class TestSqueezeNetShapes:
    @pytest.fixture(scope="class")
    def graph(self):
        return build_model("squeezenet-v1.1")

    def test_conv1(self, graph):
        assert shape_of(graph, "conv1") == (1, 64, 111, 111)

    @pytest.mark.parametrize(
        "name,channels",
        [
            ("fire2_concat", 128),
            ("fire4_concat", 256),
            ("fire6_concat", 384),
            ("fire9_concat", 512),
        ],
    )
    def test_fire_concat_channels(self, graph, name, channels):
        assert shape_of(graph, name)[1] == channels

    def test_classifier_conv(self, graph):
        assert shape_of(graph, "conv10") == (1, 1000, 13, 13)
