"""Tests for repro.experiments.analysis."""

import numpy as np
import pytest

from repro.experiments.analysis import (
    ComparisonResult,
    ConfidenceInterval,
    bootstrap_ci,
    compare_arms,
    curve_auc,
    time_to_fraction,
    variance_reduction_pct,
)


class TestBootstrapCi:
    def test_contains_point(self):
        rng = np.random.default_rng(0)
        ci = bootstrap_ci(rng.normal(10, 1, size=50), seed=1)
        assert ci.point in ci
        assert ci.low < ci.point < ci.high

    def test_covers_true_mean_usually(self):
        rng = np.random.default_rng(1)
        hits = 0
        for i in range(20):
            samples = rng.normal(5.0, 2.0, size=40)
            if 5.0 in bootstrap_ci(samples, seed=i):
                hits += 1
        assert hits >= 16  # ~95% nominal coverage

    def test_width_shrinks_with_n(self):
        rng = np.random.default_rng(2)
        small = bootstrap_ci(rng.normal(0, 1, 10), seed=0)
        large = bootstrap_ci(rng.normal(0, 1, 1000), seed=0)
        assert (large.high - large.low) < (small.high - small.low)

    def test_custom_statistic(self):
        ci = bootstrap_ci([1.0, 2.0, 3.0, 100.0], statistic=np.median, seed=0)
        assert ci.point == pytest.approx(2.5)

    def test_deterministic(self):
        data = np.arange(20.0)
        a = bootstrap_ci(data, seed=3)
        b = bootstrap_ci(data, seed=3)
        assert (a.low, a.high) == (b.low, b.high)

    def test_validation(self):
        with pytest.raises(ValueError):
            bootstrap_ci([1.0])
        with pytest.raises(ValueError):
            bootstrap_ci([1.0, 2.0], confidence=1.5)

    def test_str(self):
        assert "@95%" in str(bootstrap_ci([1.0, 2.0, 3.0], seed=0))


class TestCompareArms:
    def test_clear_winner(self):
        a = np.random.default_rng(0).normal(10, 0.5, size=30)
        b = np.random.default_rng(1).normal(5, 0.5, size=30)
        result = compare_arms(a, b)
        assert result.prob_superiority > 0.95
        assert result.significant
        assert result.median_a > result.median_b

    def test_identical_arms_not_significant(self):
        rng = np.random.default_rng(2)
        a = rng.normal(0, 1, size=30)
        b = rng.normal(0, 1, size=30)
        result = compare_arms(a, b)
        assert not result.significant
        assert 0.3 < result.prob_superiority < 0.7

    def test_validation(self):
        with pytest.raises(ValueError):
            compare_arms([1.0], [1.0, 2.0])


class TestCurveMetrics:
    def test_instant_convergence_auc_is_one(self):
        assert curve_auc([5.0, 5.0, 5.0]) == pytest.approx(1.0)

    def test_slow_convergence_lower_auc(self):
        fast = curve_auc([4.0, 5.0, 5.0, 5.0])
        slow = curve_auc([1.0, 2.0, 3.0, 5.0])
        assert fast > slow

    def test_unnormalized(self):
        assert curve_auc([2.0, 4.0], normalize=False) == pytest.approx(3.0)

    def test_time_to_fraction(self):
        curve = [1.0, 5.0, 9.0, 10.0]
        assert time_to_fraction(curve, 0.5) == 2
        assert time_to_fraction(curve, 1.0) == 4
        assert time_to_fraction(curve, 1.5) is None

    def test_curve_validation(self):
        with pytest.raises(ValueError):
            curve_auc([])
        with pytest.raises(ValueError):
            time_to_fraction([], 0.5)
        with pytest.raises(ValueError):
            time_to_fraction([1.0], 0.0)


class TestVarianceReduction:
    def test_matches_paper_convention(self):
        # paper Table I: 0.9290 -> 0.0674 is -92.74%
        assert variance_reduction_pct(0.9290, 0.0674) == pytest.approx(
            -92.74, abs=0.05
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            variance_reduction_pct(0.0, 1.0)
