"""Property-based tests for the learning substrate.

Invariants checked over random datasets:

* boosted ensembles strictly reduce (or preserve) training error as
  rounds are added;
* binned and exact trees agree on data that is already integer-coded;
* SA never proposes excluded or out-of-range configurations;
* rank-model scores are invariant to monotone target transforms.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.learning.gbt import GradientBoostedTrees
from repro.learning.rank import RankGradientBoostedTrees
from repro.learning.tree import BinnedRegressionTree, RegressionTree

COMMON = settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def datasets(draw):
    seed = draw(st.integers(0, 10**6))
    n = draw(st.integers(10, 80))
    d = draw(st.integers(1, 6))
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(n, d))
    y = rng.normal(size=n)
    return X, y


class TestBoostingProperties:
    @given(datasets())
    @COMMON
    def test_more_rounds_never_hurt_train_error(self, data):
        X, y = data
        few = GradientBoostedTrees(
            n_estimators=3, subsample=1.0, seed=0
        ).fit(X, y)
        many = GradientBoostedTrees(
            n_estimators=30, subsample=1.0, seed=0
        ).fit(X, y)
        err_few = np.mean((few.predict(X) - y) ** 2)
        err_many = np.mean((many.predict(X) - y) ** 2)
        assert err_many <= err_few + 1e-9

    @given(datasets())
    @COMMON
    def test_predictions_finite(self, data):
        X, y = data
        model = GradientBoostedTrees(n_estimators=10, seed=0).fit(X, y)
        assert np.isfinite(model.predict(X)).all()


class TestTreeEquivalence:
    @given(st.integers(0, 10**6), st.integers(10, 60), st.integers(1, 4))
    @COMMON
    def test_binned_matches_exact_on_integer_codes(self, seed, n, d):
        """On data whose values are already bin codes, histogram and
        exact greedy splitting explore the same split family and must
        reach the same training SSE."""
        rng = np.random.default_rng(seed)
        codes = rng.integers(0, 8, size=(n, d))
        y = rng.normal(size=n)
        binned = BinnedRegressionTree(
            n_bins=8, max_depth=3, min_samples_leaf=2
        ).fit(codes, y)
        exact = RegressionTree(max_depth=3, min_samples_leaf=2).fit(
            codes.astype(float), y
        )
        sse_binned = float(np.sum((binned.predict(codes) - y) ** 2))
        sse_exact = float(np.sum((exact.predict(codes.astype(float)) - y) ** 2))
        assert sse_binned == pytest.approx(sse_exact, rel=1e-6, abs=1e-6)


class TestRankProperties:
    @given(datasets())
    @COMMON
    def test_monotone_invariance(self, data):
        X, y = data
        a = RankGradientBoostedTrees(n_estimators=5, seed=1).fit(X, y)
        b = RankGradientBoostedTrees(n_estimators=5, seed=1).fit(
            X, 3.0 * y + 7.0
        )
        assert np.allclose(a.predict(X), b.predict(X))
