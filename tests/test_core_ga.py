"""Tests for the genetic-algorithm baseline tuner."""

import pytest

from repro.core import make_tuner
from repro.core.tuners.ga import GATuner


class TestGATuner:
    def test_registry(self, small_task):
        assert isinstance(make_tuner("ga", small_task), GATuner)

    def test_budget_respected(self, small_task):
        tuner = GATuner(small_task, seed=0, population_size=16)
        result = tuner.tune(n_trial=64, early_stopping=None)
        assert result.num_measurements == 64

    def test_no_duplicates(self, small_task):
        tuner = GATuner(small_task, seed=0, population_size=16)
        result = tuner.tune(n_trial=80, early_stopping=None)
        indices = [r.config_index for r in result.records]
        assert len(set(indices)) == len(indices)

    def test_deterministic(self, small_task):
        a = GATuner(small_task, seed=5, population_size=16).tune(
            n_trial=48, early_stopping=None
        )
        b = GATuner(small_task, seed=5, population_size=16).tune(
            n_trial=48, early_stopping=None
        )
        assert [r.config_index for r in a.records] == [
            r.config_index for r in b.records
        ]

    def test_evolution_improves_over_first_generation(self, small_task):
        tuner = GATuner(small_task, seed=2, population_size=32)
        result = tuner.tune(n_trial=160, early_stopping=None)
        curve = result.best_curve()
        assert curve[-1] > curve[31]  # later generations found better

    def test_competitive_with_random(self, small_task):
        budget = 160
        ga_best = GATuner(small_task, seed=1, population_size=32).tune(
            n_trial=budget, early_stopping=None
        ).best_gflops
        random_best = make_tuner("random", small_task, seed=1).tune(
            n_trial=budget, early_stopping=None
        ).best_gflops
        assert ga_best > 0.9 * random_best

    def test_validation(self, small_task):
        with pytest.raises(ValueError):
            GATuner(small_task, population_size=2)
        with pytest.raises(ValueError):
            GATuner(small_task, elite_fraction=1.5)
        with pytest.raises(ValueError):
            GATuner(small_task, mutation_prob=-0.1)

    def test_settings_kwargs(self, small_task):
        from repro.experiments.settings import PAPER_SETTINGS

        tuner = make_tuner(
            "ga", small_task, seed=0, **PAPER_SETTINGS.tuner_kwargs("ga")
        )
        assert tuner.population_size == PAPER_SETTINGS.batch_size
