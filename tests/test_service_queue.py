"""Admission-control tests: per-tenant quotas and priority dequeue.

The :class:`~repro.service.JobQueue` sits between the HTTP API and the
job store.  These tests pin the two satellite contracts: an over-quota
submit is rejected with a structured error body (tenant, limit, active
count), and a higher-priority job submitted *later* is dequeued first
— deterministic because the service drains with a single runner.
"""

import threading

import pytest

from repro.service import (
    DEFAULT_QUOTA,
    InvalidTransitionError,
    JobQueue,
    JobSpec,
    JobStore,
    QuotaExceededError,
)


def _spec(tenant="default", priority=0, model="alexnet"):
    return JobSpec(
        model=model, arm="bted", n_trial=8, tenant=tenant,
        priority=priority,
    )


@pytest.fixture()
def store(tmp_path):
    store = JobStore(tmp_path / "jobs.sqlite")
    yield store
    store.close()


class TestQuotas:
    def test_over_quota_submit_rejected_with_structured_body(self, store):
        queue = JobQueue(store, quotas={"acme": 2})
        queue.submit(_spec(tenant="acme"))
        queue.submit(_spec(tenant="acme"))
        with pytest.raises(QuotaExceededError) as excinfo:
            queue.submit(_spec(tenant="acme"))
        err = excinfo.value
        assert err.http_status == 429
        body = err.to_dict()["error"]
        assert body["code"] == "quota_exceeded"
        assert body["tenant"] == "acme"
        assert body["limit"] == 2
        assert body["active"] == 2
        assert "quota" in body["message"]

    def test_quota_counts_only_active_jobs(self, store):
        """Settled jobs release their quota slot."""
        queue = JobQueue(store, quotas={"acme": 1})
        job = queue.submit(_spec(tenant="acme"))
        with pytest.raises(QuotaExceededError):
            queue.submit(_spec(tenant="acme"))
        # running still holds the slot ...
        assert queue.claim_next().job_id == job.job_id
        with pytest.raises(QuotaExceededError):
            queue.submit(_spec(tenant="acme"))
        # ... done releases it
        store.transition(job.job_id, "done")
        queue.submit(_spec(tenant="acme"))

    def test_quotas_are_per_tenant(self, store):
        queue = JobQueue(store, quotas={"acme": 1}, default_quota=2)
        queue.submit(_spec(tenant="acme"))
        with pytest.raises(QuotaExceededError):
            queue.submit(_spec(tenant="acme"))
        # other tenants use the default quota, independently
        queue.submit(_spec(tenant="zenith"))
        queue.submit(_spec(tenant="zenith"))
        with pytest.raises(QuotaExceededError) as excinfo:
            queue.submit(_spec(tenant="zenith"))
        assert excinfo.value.to_dict()["error"]["limit"] == 2

    def test_zero_quota_blocks_a_tenant_entirely(self, store):
        queue = JobQueue(store, quotas={"banned": 0})
        with pytest.raises(QuotaExceededError):
            queue.submit(_spec(tenant="banned"))

    def test_default_quota_applies_to_unknown_tenants(self, store):
        queue = JobQueue(store)
        assert queue.quota_for("anyone") == DEFAULT_QUOTA
        for _ in range(DEFAULT_QUOTA):
            queue.submit(_spec(tenant="anyone"))
        with pytest.raises(QuotaExceededError):
            queue.submit(_spec(tenant="anyone"))

    def test_invalid_quota_config_rejected(self, store):
        with pytest.raises(ValueError):
            JobQueue(store, default_quota=0)
        with pytest.raises(ValueError):
            JobQueue(store, quotas={"acme": -1})

    def test_concurrent_submits_cannot_race_past_quota(self, store):
        """Parallel HTTP handlers must not over-admit a tenant."""
        queue = JobQueue(store, quotas={"acme": 4})
        admitted, rejected = [], []
        barrier = threading.Barrier(8)

        def worker():
            barrier.wait()
            try:
                admitted.append(queue.submit(_spec(tenant="acme")))
            except QuotaExceededError:
                rejected.append(1)

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(admitted) == 4
        assert len(rejected) == 4
        assert store.active_count("acme") == 4


class TestPriorities:
    def test_later_higher_priority_job_dequeues_first(self, store):
        """The satellite contract, verbatim: submit low then high."""
        queue = JobQueue(store)
        low = queue.submit(_spec(priority=0))
        high = queue.submit(_spec(priority=5))
        assert queue.claim_next().job_id == high.job_id
        assert queue.claim_next().job_id == low.job_id
        assert queue.claim_next() is None

    def test_fifo_within_a_priority_level(self, store):
        queue = JobQueue(store)
        first = queue.submit(_spec(priority=1))
        second = queue.submit(_spec(priority=1))
        assert queue.claim_next().job_id == first.job_id
        assert queue.claim_next().job_id == second.job_id

    def test_negative_priorities_sink_below_default(self, store):
        queue = JobQueue(store)
        background = queue.submit(_spec(priority=-3))
        normal = queue.submit(_spec(priority=0))
        assert queue.claim_next().job_id == normal.job_id
        assert queue.claim_next().job_id == background.job_id

    def test_drain_order_is_fully_deterministic(self, store):
        queue = JobQueue(store)
        jobs = [
            queue.submit(_spec(priority=p))
            for p in (0, 2, -1, 2, 1, 0)
        ]
        expected = [jobs[1], jobs[3], jobs[4], jobs[0], jobs[5], jobs[2]]
        drained = []
        while True:
            job = queue.claim_next()
            if job is None:
                break
            drained.append(job.job_id)
            store.transition(job.job_id, "done")
        assert drained == [j.job_id for j in expected]


class TestCancel:
    def test_cancel_removes_a_queued_job(self, store):
        queue = JobQueue(store)
        job = queue.submit(_spec())
        assert queue.depth() == 1
        cancelled = queue.cancel(job.job_id)
        assert cancelled.state == "cancelled"
        assert queue.depth() == 0
        assert queue.claim_next() is None

    def test_cancel_running_job_raises_conflict(self, store):
        queue = JobQueue(store)
        job = queue.submit(_spec())
        queue.claim_next()
        with pytest.raises(InvalidTransitionError) as excinfo:
            queue.cancel(job.job_id)
        assert excinfo.value.http_status == 409
        assert excinfo.value.to_dict()["error"]["code"] == (
            "invalid_transition"
        )

    def test_cancelled_job_releases_quota(self, store):
        queue = JobQueue(store, quotas={"acme": 1})
        job = queue.submit(_spec(tenant="acme"))
        with pytest.raises(QuotaExceededError):
            queue.submit(_spec(tenant="acme"))
        queue.cancel(job.job_id)
        queue.submit(_spec(tenant="acme"))
