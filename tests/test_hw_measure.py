"""Tests for repro.hardware.measure: tasks and the measurement harness."""

import numpy as np
import pytest

from repro.hardware.device import JETSON_TX2
from repro.hardware.measure import (
    MeasureErrorKind,
    Measurer,
    SimulatedTask,
)


class TestSimulatedTask:
    def test_space_built_automatically(self, small_conv_workload):
        task = SimulatedTask(small_conv_workload, seed=0)
        assert len(task.space) > 1000

    def test_environment_is_pure_function_of_seed(self, small_conv_workload):
        a = SimulatedTask(small_conv_workload, seed=3)
        b = SimulatedTask(small_conv_workload, seed=3)
        idx = int(a.space.sample(1, seed=0)[0])
        assert a.true_gflops(idx) == pytest.approx(b.true_gflops(idx))

    def test_different_seed_different_terrain(self, small_conv_workload):
        a = SimulatedTask(small_conv_workload, seed=3)
        b = SimulatedTask(small_conv_workload, seed=4)
        indices = a.space.sample(50, seed=0)
        va = np.array([a.true_gflops(int(i)) for i in indices])
        vb = np.array([b.true_gflops(int(i)) for i in indices])
        assert not np.allclose(va, vb)

    def test_device_changes_environment(self, small_conv_workload):
        a = SimulatedTask(small_conv_workload, seed=3)
        b = SimulatedTask(small_conv_workload, seed=3, device=JETSON_TX2)
        idx = next(
            int(i)
            for i in a.space.sample(50, seed=0)
            if a.true_gflops(int(i)) > 0 and b.true_gflops(int(i)) > 0
        )
        assert a.true_gflops(idx) != pytest.approx(b.true_gflops(idx))

    def test_invalid_config_zero_gflops(self, small_task):
        space = small_task.space
        invalid = next(
            int(i)
            for i in space.sample(500, seed=2)
            if small_task.true_gflops(int(i)) == 0.0
        )
        assert small_task.true_time_s(invalid) == float("inf")
        assert small_task.noise_sigma(invalid) == 0.0

    def test_time_consistent_with_gflops(self, small_task):
        idx = next(
            int(i)
            for i in small_task.space.sample(100, seed=0)
            if small_task.true_gflops(int(i)) > 0
        )
        gflops = small_task.true_gflops(idx)
        time_s = small_task.true_time_s(idx)
        assert gflops * 1e9 * time_s == pytest.approx(
            small_task.workload.flops, rel=1e-9
        )

    def test_repr(self, small_task):
        assert "SimulatedTask" in repr(small_task)


class TestMeasurer:
    def test_counts_measurements(self, small_task):
        measurer = Measurer(small_task, seed=0)
        measurer.measure_batch(small_task.space.sample(7, seed=1))
        assert measurer.num_measurements == 7

    def test_valid_measurement_near_truth(self, small_task):
        measurer = Measurer(small_task, seed=0, repeats=10)
        idx = next(
            int(i)
            for i in small_task.space.sample(100, seed=0)
            if small_task.true_gflops(int(i)) > 0
        )
        result = measurer.measure_one(idx)
        assert result.ok
        truth = small_task.true_gflops(idx)
        assert result.gflops == pytest.approx(truth, rel=0.25)

    def test_noise_varies_between_measurements(self, small_task):
        measurer = Measurer(small_task, seed=0, repeats=1)
        idx = next(
            int(i)
            for i in small_task.space.sample(100, seed=0)
            if small_task.true_gflops(int(i)) > 0
        )
        a = measurer.measure_one(idx).gflops
        b = measurer.measure_one(idx).gflops
        assert a != b

    def test_resource_error_reported(self, small_task):
        measurer = Measurer(small_task, seed=0)
        invalid = next(
            int(i)
            for i in small_task.space.sample(500, seed=2)
            if small_task.true_gflops(int(i)) == 0.0
        )
        result = measurer.measure_one(invalid)
        assert not result.ok
        assert result.gflops == 0.0
        assert result.error_kind in (
            MeasureErrorKind.RESOURCE_ERROR,
            MeasureErrorKind.TIMEOUT,
        )
        assert result.error_msg

    def test_timeout(self, small_task):
        tight = Measurer(small_task, seed=0, timeout_s=1e-9)
        valid = next(
            int(i)
            for i in small_task.space.sample(100, seed=0)
            if small_task.true_gflops(int(i)) > 0
        )
        result = tight.measure_one(valid)
        assert result.error_kind is MeasureErrorKind.TIMEOUT

    def test_batch_order_preserved(self, small_task):
        measurer = Measurer(small_task, seed=0)
        indices = [int(i) for i in small_task.space.sample(5, seed=3)]
        results = measurer.measure_batch(indices)
        assert [r.config_index for r in results] == indices

    def test_rejects_bad_repeats(self, small_task):
        with pytest.raises(ValueError):
            Measurer(small_task, repeats=0)
