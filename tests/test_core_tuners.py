"""Tests for the concrete tuner arms (random/grid/autotvm/bted/bted+bao)."""

import numpy as np
import pytest

from repro.core import TUNER_REGISTRY, make_tuner
from repro.core.bao import BaoSettings
from repro.core.tuners.autotvm import AutoTVMTuner
from repro.core.tuners.bted import BTEDTuner
from repro.core.tuners.btedbao import BTEDBAOTuner
from repro.core.tuners.grid import GridTuner
from repro.learning.transfer import TransferHistory


class TestRegistry:
    def test_all_arms_present(self):
        assert set(TUNER_REGISTRY) == {
            "random",
            "grid",
            "ga",
            "autotvm",
            "bted",
            "bted+as",
            "bted+bao",
            "bted+bao+as",
            "bted+bao+droplet",
            "droplet",
        }

    def test_make_tuner(self, small_task):
        tuner = make_tuner("AutoTVM", small_task, seed=1)
        assert isinstance(tuner, AutoTVMTuner)

    def test_unknown_arm(self, small_task):
        with pytest.raises(KeyError):
            make_tuner("bayesopt", small_task)


class TestGridTuner:
    def test_covers_space_evenly(self, dense_task):
        tuner = GridTuner(dense_task, batch_size=32, planned_trials=64)
        result = tuner.tune(n_trial=64, early_stopping=None)
        indices = sorted(r.config_index for r in result.records)
        strides = np.diff(indices)
        assert len(set(strides.tolist())) == 1  # constant stride

    def test_deterministic(self, dense_task):
        a = GridTuner(dense_task, planned_trials=50).tune(
            n_trial=20, early_stopping=None
        )
        b = GridTuner(dense_task, planned_trials=50).tune(
            n_trial=20, early_stopping=None
        )
        assert [r.config_index for r in a.records] == [
            r.config_index for r in b.records
        ]


class TestAutoTVMTuner:
    def test_initializes_with_init_size(self, small_task):
        tuner = AutoTVMTuner(small_task, seed=0, init_size=24, batch_size=8)
        result = tuner.tune(n_trial=24, early_stopping=None)
        assert result.num_measurements == 24

    def test_improves_over_random(self, small_task):
        budget = 160
        random_best = make_tuner("random", small_task, seed=3).tune(
            n_trial=budget, early_stopping=None
        ).best_gflops
        autotvm_best = make_tuner("autotvm", small_task, seed=3).tune(
            n_trial=budget, early_stopping=None
        ).best_gflops
        assert autotvm_best >= 0.95 * random_best

    def test_epsilon_greedy_validation(self, small_task):
        with pytest.raises(ValueError):
            AutoTVMTuner(small_task, epsilon_greedy=1.0)

    def test_transfer_roundtrip(self, small_task):
        history = TransferHistory()
        tuner = AutoTVMTuner(small_task, seed=0, transfer=history)
        tuner.tune(n_trial=96, early_stopping=None)
        tuner.export_history()
        assert len(history) == 1
        assert history.num_samples > 0

    def test_export_without_history_raises(self, small_task):
        tuner = AutoTVMTuner(small_task, seed=0)
        with pytest.raises(RuntimeError):
            tuner.export_history()


class TestBTEDTuner:
    def test_init_is_bted_selection(self, small_task):
        from repro.core.bted import bted_select

        tuner = BTEDTuner(
            small_task, seed=0, init_size=16, batch_candidates=100,
            num_batches=2,
        )
        expected = bted_select(
            small_task.space,
            m=16,
            mu=0.1,
            batch_candidates=100,
            num_batches=2,
            seed=tuner.rng_pool.seed_for("bted-init"),
        )
        assert tuner._generate_initial() == expected

    def test_runs_to_budget(self, small_task):
        tuner = BTEDTuner(
            small_task, seed=0, init_size=16, batch_size=16,
            batch_candidates=64, num_batches=2,
        )
        result = tuner.tune(n_trial=48, early_stopping=None)
        assert result.num_measurements == 48


@pytest.mark.slow
class TestBTEDBAOTuner:
    def make(self, task, **bao_kwargs):
        return BTEDBAOTuner(
            task,
            seed=0,
            init_size=16,
            batch_candidates=64,
            num_batches=2,
            bao_settings=BaoSettings(
                neighborhood_size=64, **bao_kwargs
            ),
        )

    def test_batch_size_is_one_after_init(self, small_task):
        tuner = self.make(small_task)
        result = tuner.tune(n_trial=24, early_stopping=None)
        # 16 init + 8 single-point BAO iterations
        assert result.num_measurements == 24
        assert tuner.batch_size == 1

    def test_radius_adapts_during_run(self, small_task):
        tuner = self.make(small_task)
        tuner.tune(n_trial=40, early_stopping=None)
        assert tuner.bao.last_radius in (
            pytest.approx(3.0),
            pytest.approx(4.5),
        )

    def test_finds_good_config(self, small_task):
        budget = 160
        bao_best = self.make(small_task).tune(
            n_trial=budget, early_stopping=None
        ).best_gflops
        random_best = make_tuner("random", small_task, seed=0).tune(
            n_trial=budget, early_stopping=None
        ).best_gflops
        assert bao_best > 0.9 * random_best

    def test_no_duplicates(self, small_task):
        tuner = self.make(small_task)
        result = tuner.tune(n_trial=48, early_stopping=None)
        indices = [r.config_index for r in result.records]
        assert len(set(indices)) == len(indices)

    def test_invalid_init_size(self, small_task):
        with pytest.raises(ValueError):
            BTEDBAOTuner(small_task, init_size=0)
