"""Tests for repro.pipeline.records: the tuning-record store."""

import pytest

from repro.nn.workloads import Conv2DWorkload, DenseWorkload
from repro.pipeline.records import RecordStore, TuningRecord


def wl_a():
    return Conv2DWorkload(1, 8, 16, 14, 14, 3, 3, pad_h=1, pad_w=1)


def wl_b():
    return DenseWorkload(1, 64, 32)


class TestRecordStore:
    def test_add_and_len(self):
        store = RecordStore()
        store.add(TuningRecord(wl_a(), 5, 100.0))
        assert len(store) == 1

    def test_best_for_tracks_max(self):
        store = RecordStore()
        store.add(TuningRecord(wl_a(), 1, 50.0))
        store.add(TuningRecord(wl_a(), 2, 80.0))
        store.add(TuningRecord(wl_a(), 3, 60.0))
        best = store.best_for(wl_a())
        assert best.config_index == 2
        assert best.gflops == 80.0

    def test_errored_records_never_best(self):
        store = RecordStore()
        store.add(TuningRecord(wl_a(), 1, 0.0, error="resource"))
        assert store.best_for(wl_a()) is None
        store.add(TuningRecord(wl_a(), 2, 10.0))
        assert store.best_for(wl_a()).config_index == 2

    def test_workloads_listing(self):
        store = RecordStore()
        store.add(TuningRecord(wl_a(), 1, 10.0))
        store.add(TuningRecord(wl_b(), 2, 20.0))
        assert set(store.workloads()) == {wl_a(), wl_b()}

    def test_unknown_workload(self):
        assert RecordStore().best_for(wl_a()) is None

    def test_extend_and_iter(self):
        store = RecordStore()
        records = [TuningRecord(wl_a(), i, float(i)) for i in range(5)]
        store.extend(records)
        assert list(store) == records


class TestPersistence:
    def test_roundtrip(self, tmp_path):
        store = RecordStore()
        store.add(TuningRecord(wl_a(), 7, 123.5, tuner_name="bted+bao"))
        store.add(TuningRecord(wl_b(), 9, 55.5, error="timeout"))
        path = tmp_path / "records.jsonl"
        store.save(path)

        loaded = RecordStore.load(path)
        assert len(loaded) == 2
        best = loaded.best_for(wl_a())
        assert best.config_index == 7
        assert best.gflops == 123.5
        assert best.tuner_name == "bted+bao"
        assert loaded.best_for(wl_b()) is None  # errored record

    def test_json_line_format(self):
        record = TuningRecord(wl_a(), 3, 42.0)
        line = record.to_json()
        assert "\n" not in line
        parsed = TuningRecord.from_json(line)
        assert parsed == record

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "records.jsonl"
        record = TuningRecord(wl_a(), 3, 42.0)
        path.write_text(record.to_json() + "\n\n\n")
        assert len(RecordStore.load(path)) == 1
