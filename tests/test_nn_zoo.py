"""Tests for the model zoo: published FLOPs/params and task counts."""

import pytest

from repro.nn.fusion import fuse_graph
from repro.nn.zoo import MODEL_BUILDERS, PAPER_MODELS, build_model
from repro.pipeline.tasks import extract_tasks


class TestRegistry:
    def test_all_builders_listed(self):
        from repro.nn.zoo import EXTENSION_MODELS

        assert set(PAPER_MODELS) | set(EXTENSION_MODELS) == set(
            MODEL_BUILDERS
        )

    def test_unknown_model(self):
        with pytest.raises(KeyError):
            build_model("lenet-5")

    def test_case_insensitive(self):
        assert build_model("MobileNet-V1").name == "mobilenet-v1"

    @pytest.mark.parametrize("name", PAPER_MODELS)
    def test_builds_and_infers(self, name):
        graph = build_model(name)
        graph.infer_shapes()
        assert len(graph) > 10


class TestPublishedNumbers:
    """Parameter/FLOP counts must match the literature (+-2%)."""

    @pytest.mark.parametrize(
        "name,params_m",
        [
            ("alexnet", 62.4),
            ("vgg-16", 138.4),
            ("resnet-18", 11.7),
            ("mobilenet-v1", 4.2),
            ("squeezenet-v1.1", 1.24),
        ],
    )
    def test_param_counts(self, name, params_m):
        params = build_model(name).total_params() / 1e6
        assert params == pytest.approx(params_m, rel=0.02)

    @pytest.mark.parametrize(
        "name,gflops",
        [
            ("vgg-16", 31.0),
            ("resnet-18", 3.6),
            ("mobilenet-v1", 1.15),
            ("squeezenet-v1.1", 0.70),
        ],
    )
    def test_flop_counts(self, name, gflops):
        flops = build_model(name).total_flops() / 1e9
        assert flops == pytest.approx(gflops, rel=0.05)

    def test_classifier_output_shape(self):
        for name in PAPER_MODELS:
            graph = build_model(name)
            graph.infer_shapes()
            (out,) = graph.output_nodes()
            assert out.output_shape == (1, 1000)


class TestTaskCounts:
    def test_mobilenet_has_19_tasks(self):
        """The paper's Fig. 5 tunes exactly 19 MobileNet-v1 tasks."""
        tasks = extract_tasks(build_model("mobilenet-v1"))
        assert len(tasks) == 19

    def test_total_tasks_near_paper(self):
        """The paper reports 58 nodes over the 5 models; our builders
        yield 62 (exact layer/dedup bookkeeping differs slightly from
        TVM v0.6.1 — see EXPERIMENTS.md)."""
        total = sum(
            len(extract_tasks(build_model(name))) for name in PAPER_MODELS
        )
        assert 55 <= total <= 65

    def test_alexnet_task_count(self):
        assert len(extract_tasks(build_model("alexnet"))) == 5

    def test_vgg_task_count(self):
        assert len(extract_tasks(build_model("vgg-16"))) == 9

    def test_mobilenet_occurrences_cover_all_convs(self):
        tasks = extract_tasks(build_model("mobilenet-v1"))
        # 27 conv/dw layers + conv1 = 28 anchor layers minus fc
        assert sum(t.occurrences for t in tasks) == 27

    def test_batch_size_parameter(self):
        graph = build_model("resnet-18", batch=4)
        graph.infer_shapes()
        (out,) = graph.output_nodes()
        assert out.output_shape == (4, 1000)


class TestFusionOnZoo:
    @pytest.mark.parametrize("name", PAPER_MODELS)
    def test_fusion_covers_graph(self, name):
        graph = build_model(name)
        groups = fuse_graph(graph)
        covered = sorted(i for g in groups for i in g.node_ids)
        assert covered == list(range(len(graph)))

    def test_mobilenet_blocks_fuse_bn_relu(self):
        graph = build_model("mobilenet-v1")
        groups = fuse_graph(graph)
        fused_convs = [
            g for g in groups if g.is_tunable and "batch_norm" in g.ops
        ]
        # every conv/dw in MobileNet is followed by bn+relu
        assert len(fused_convs) == 27
