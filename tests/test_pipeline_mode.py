"""Pipelined tuning conformance: speculation must be invisible.

``pipeline=True`` proposes batch ``k+1`` on a worker thread while
batch ``k`` is being measured, validating the speculative clone's
predicted results against the real ones and replaying serially on any
mismatch.  The contract (``docs/PERFORMANCE.md``): records, incumbent,
and event stream — modulo the ``speculation_resolved`` marker — are
bit-identical to the serial loop for every registry arm, across a
SIGKILL-style crash at *any* checkpointed batch, and composed with
``refit="incremental"``.
"""

import pytest

from repro.core import INCREMENTAL_REFIT_ARMS, TUNER_REGISTRY, make_tuner
from repro.core.checkpoint import CheckpointPolicy
from repro.core.events import (
    BatchMeasured,
    CheckpointSaved,
    EventLog,
    SpeculationResolved,
)
from repro.hardware.measure import SimulatedTask
from repro.nn.workloads import DenseWorkload

# module-level task: tuners only read from it, so sharing is safe and
# keeps the parametrized matrix cheap
TASK = SimulatedTask(
    DenseWorkload(batch=1, in_features=64, out_features=48), seed=7
)

#: every registry arm, with small-batch parameters so the pipelined
#: loop actually speculates (a single full-budget batch never would)
ARM_KWARGS = {
    "random": dict(batch_size=8),
    "grid": dict(batch_size=8),
    "ga": dict(population_size=8),
    "autotvm": dict(batch_size=8, init_size=8, sa_chains=8, sa_steps=10),
    "bted": dict(batch_size=8, init_size=6, batch_candidates=24),
    "bted+as": dict(batch_size=8, init_size=6, batch_candidates=24),
    "bted+bao": dict(
        init_size=6, batch_candidates=24, num_batches=2,
        measure_batch_size=4,
    ),
    "bted+bao+as": dict(
        init_size=6, batch_candidates=24, num_batches=2,
        measure_batch_size=4,
    ),
    "bted+bao+droplet": dict(
        init_size=6, batch_candidates=24, num_batches=2,
        measure_batch_size=4, finish_after=10,
    ),
    "droplet": dict(batch_size=8, init_size=6),
}
N_TRIAL = 16


def test_every_registry_arm_is_covered():
    assert sorted(ARM_KWARGS) == sorted(TUNER_REGISTRY)


def _trace(result):
    return [
        (r.step, r.config_index, r.gflops, r.error) for r in result.records
    ]


def _kinds(log):
    """Event kinds with the pipelined-only marker filtered out."""
    return [
        e.kind for e in log.events if e.kind != "speculation_resolved"
    ]


def _run(arm, *, pipeline, refit=None, n_trial=N_TRIAL):
    kwargs = dict(ARM_KWARGS[arm])
    if refit is not None:
        kwargs["refit"] = refit
    log = EventLog()
    tuner = make_tuner(arm, TASK, seed=5, **kwargs)
    result = tuner.tune(
        n_trial=n_trial, early_stopping=None, on_event=[log],
        pipeline=pipeline,
    )
    return result, log


class TestPipelinedEqualsSerial:
    @pytest.mark.parametrize("arm", sorted(ARM_KWARGS))
    def test_records_events_and_incumbent_match(self, arm):
        serial, slog = _run(arm, pipeline=False)
        piped, plog = _run(arm, pipeline=True)
        assert _trace(piped) == _trace(serial)
        assert piped.best_index == serial.best_index
        assert piped.best_gflops == serial.best_gflops
        assert _kinds(plog) == _kinds(slog)

    def test_speculations_happen_and_are_adopted(self):
        _, plog = _run("bted+bao", pipeline=True)
        resolved = plog.of_type(SpeculationResolved)
        assert resolved, "small batches should leave room to speculate"
        # ordinal-deterministic measurement makes every prediction exact
        assert all(e.adopted for e in resolved)

    @pytest.mark.parametrize("arm", sorted(INCREMENTAL_REFIT_ARMS))
    def test_incremental_refit_is_pipeline_invariant(self, arm):
        serial, _ = _run(arm, pipeline=False, refit="incremental")
        piped, _ = _run(arm, pipeline=True, refit="incremental")
        assert _trace(piped) == _trace(serial)
        assert piped.best_index == serial.best_index


class _Crash(Exception):
    pass


def _crash_after(tuner, n_checkpoints, path, *, refit=None, n_trial=N_TRIAL):
    """Pipelined ``tune`` aborted after ``n_checkpoints`` batch saves."""
    seen = [0]

    def bomb(tuner_, event):
        if isinstance(event, CheckpointSaved) and event.step > 0:
            seen[0] += 1
            if seen[0] >= n_checkpoints:
                raise _Crash()

    with pytest.raises(_Crash):
        tuner.tune(
            n_trial=n_trial,
            early_stopping=None,
            checkpoint=CheckpointPolicy(path=path, every=1),
            on_event=[bomb],
            pipeline=True,
        )


class TestPipelinedCrashResume:
    @pytest.mark.parametrize("arm", sorted(ARM_KWARGS))
    def test_crash_at_every_batch_resumes_bit_identically(
        self, arm, tmp_path
    ):
        """SIGKILL-equivalent at each checkpoint; resume == serial run.

        The resume auto-detects the checkpoint's pending speculative
        proposal and re-enters the pipelined loop; the baseline is the
        *serial* run, so this also pins cross-mode bit-identity.
        """
        kwargs = ARM_KWARGS[arm]
        baseline, blog = _run(arm, pipeline=False)
        batches = len(blog.of_type(BatchMeasured))
        assert batches >= 2, "scenario too small to crash mid-run"
        # the final batch is never followed by a checkpoint (the run is
        # complete), so there are batches - 1 distinct crash points
        for crash_at in range(1, batches):
            path = tmp_path / f"{arm.replace('+', '_')}-{crash_at}.ckpt"
            crashed = make_tuner(arm, TASK, seed=5, **kwargs)
            _crash_after(crashed, crash_at, path)
            fresh = make_tuner(arm, TASK, seed=5, **kwargs)
            resumed = fresh.resume(path)
            assert _trace(resumed) == _trace(baseline), (
                f"{arm}: resume after checkpoint {crash_at}/{batches} "
                "diverged from the serial baseline"
            )
            assert resumed.best_index == baseline.best_index
            assert resumed.best_gflops == baseline.best_gflops

    def test_crash_resume_with_incremental_refit(self, tmp_path):
        arm = "bted+bao"
        baseline, _ = _run(arm, pipeline=False, refit="incremental")
        path = tmp_path / "inc.ckpt"
        crashed = make_tuner(
            arm, TASK, seed=5, refit="incremental", **ARM_KWARGS[arm]
        )
        _crash_after(crashed, 2, path, refit="incremental")
        fresh = make_tuner(
            arm, TASK, seed=5, refit="incremental", **ARM_KWARGS[arm]
        )
        resumed = fresh.resume(path)
        assert _trace(resumed) == _trace(baseline)
        assert resumed.best_index == baseline.best_index
