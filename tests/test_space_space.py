"""Tests for repro.space.space: addressing, features, sampling."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.space.knobs import BoolKnob, OtherKnob, SplitKnob
from repro.space.space import ConfigSpace


def make_space() -> ConfigSpace:
    space = ConfigSpace("test")
    space.add_knob(SplitKnob("tile_a", 8, 2))  # 4 candidates
    space.add_knob(OtherKnob("unroll", [0, 512, 1500]))  # 3
    space.add_knob(BoolKnob("flag"))  # 2
    return space


class TestAddressing:
    def test_size(self):
        assert len(make_space()) == 4 * 3 * 2

    def test_decode_encode_roundtrip_all(self):
        space = make_space()
        for i in range(len(space)):
            assert space.encode(space.decode(i)) == i

    def test_decode_out_of_range(self):
        space = make_space()
        with pytest.raises(IndexError):
            space.decode(len(space))
        with pytest.raises(IndexError):
            space.decode(-1)

    def test_encode_validates_digits(self):
        space = make_space()
        with pytest.raises(IndexError):
            space.encode([4, 0, 0])
        with pytest.raises(ValueError):
            space.encode([0, 0])

    def test_batch_matches_scalar(self):
        space = make_space()
        indices = np.arange(len(space))
        digits = space.decode_batch(indices)
        for i in indices:
            assert tuple(digits[i]) == space.decode(int(i))
        assert (space.encode_batch(digits) == indices).all()

    def test_duplicate_knob_rejected(self):
        space = make_space()
        with pytest.raises(ValueError):
            space.add_knob(BoolKnob("flag"))

    def test_knob_lookup(self):
        space = make_space()
        assert space.knob("unroll").value(2) == 1500
        with pytest.raises(KeyError):
            space.knob("missing")


class TestEntities:
    def test_values(self):
        space = make_space()
        entity = space.get(0)
        assert entity["tile_a"] == (1, 8)
        assert entity["unroll"] == 0
        assert entity["flag"] == 0

    def test_equality_and_hash(self):
        space = make_space()
        assert space.get(3) == space.get(3)
        assert space.get(3) != space.get(4)
        assert len({space.get(3), space.get(3)}) == 1

    def test_repr(self):
        assert "tile_a" in repr(make_space().get(0))

    def test_iteration_guard(self):
        space = make_space()
        assert len(list(space)) == len(space)

    def test_equality_and_hash_across_space_instances(self):
        # content-based identity: equal knob definitions, equal entities
        a, b = make_space(), make_space()
        assert a.get(3) == b.get(3)
        assert hash(a.get(3)) == hash(b.get(3))
        assert len({a.get(3), b.get(3), a.get(4)}) == 2

    def test_inequality_across_different_spaces(self):
        other = ConfigSpace("test")
        other.add_knob(SplitKnob("tile_a", 16, 2))
        other.add_knob(OtherKnob("unroll", [0, 512, 1500]))
        other.add_knob(BoolKnob("flag"))
        assert make_space().get(3) != other.get(3)

    def test_non_entity_comparison(self):
        assert make_space().get(0) != "config-0"


class TestContentHash:
    def test_stable_across_instances(self):
        assert make_space().content_hash() == make_space().content_hash()

    def test_name_excluded(self):
        renamed = ConfigSpace("other-name")
        renamed.add_knob(SplitKnob("tile_a", 8, 2))
        renamed.add_knob(OtherKnob("unroll", [0, 512, 1500]))
        renamed.add_knob(BoolKnob("flag"))
        assert renamed.content_hash() == make_space().content_hash()

    def test_knob_change_invalidates(self):
        space = make_space()
        before = space.content_hash()
        space.add_knob(BoolKnob("late"))
        assert space.content_hash() != before

    def test_knob_order_matters(self):
        a = ConfigSpace("a")
        a.add_knob(BoolKnob("x"))
        a.add_knob(OtherKnob("y", [0, 1, 2]))
        b = ConfigSpace("b")
        b.add_knob(OtherKnob("y", [0, 1, 2]))
        b.add_knob(BoolKnob("x"))
        assert a.content_hash() != b.content_hash()


class TestFeatures:
    def test_feature_dim(self):
        assert make_space().feature_dim == 2 + 1 + 1

    def test_feature_matrix_matches_scalar(self):
        space = make_space()
        indices = [0, 5, 11, 23]
        matrix = space.feature_matrix(indices)
        for row, idx in zip(matrix, indices):
            assert np.allclose(row, space.features_of(idx))

    def test_empty_feature_matrix(self):
        space = make_space()
        assert space.feature_matrix([]).shape == (0, space.feature_dim)

    def test_features_from_digits(self):
        space = make_space()
        digits = space.decode_batch(np.array([7, 13]))
        feats = space.features_from_digits(digits)
        assert np.allclose(feats, space.feature_matrix([7, 13]))

    def test_distinct_configs_distinct_features(self):
        # the three knobs chosen here embed injectively
        space = make_space()
        matrix = space.feature_matrix(list(range(len(space))))
        unique_rows = np.unique(matrix, axis=0)
        assert len(unique_rows) == len(space)


class TestSampling:
    def test_sample_distinct(self):
        space = make_space()
        indices = space.sample(10, seed=0)
        assert len(set(indices.tolist())) == 10

    def test_sample_more_than_space(self):
        space = make_space()
        indices = space.sample(1000, seed=0)
        assert sorted(indices.tolist()) == list(range(len(space)))

    def test_sample_deterministic(self):
        space = make_space()
        a = space.sample(8, seed=3)
        b = space.sample(8, seed=3)
        assert (a == b).all()

    def test_sample_large_space_distinct(self, small_task):
        indices = small_task.space.sample(500, seed=1)
        assert len(set(indices.tolist())) == 500

    @given(st.integers(0, 2**32 - 1))
    @settings(max_examples=20, deadline=None)
    def test_random_walk_changes_one_knob(self, seed):
        space = make_space()
        start = int(np.random.default_rng(seed).integers(0, len(space)))
        moved = space.random_walk(start, seed=seed)
        a = space.decode(start)
        b = space.decode(moved)
        assert sum(x != y for x, y in zip(a, b)) == 1

    def test_random_walk_on_singleton_space(self):
        space = ConfigSpace()
        space.add_knob(OtherKnob("only", [42]))
        assert space.random_walk(0, seed=0) == 0

    def test_repr(self):
        assert "ConfigSpace" in repr(make_space())
