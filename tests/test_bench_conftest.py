"""Tests for the benchmark harness plumbing (scale env, artifacts)."""

import importlib
import sys
from pathlib import Path

import pytest

BENCH_DIR = Path(__file__).parent.parent / "benchmarks"
sys.path.insert(0, str(BENCH_DIR.parent))


@pytest.fixture
def conftest_module():
    import benchmarks.conftest as module

    return module


class TestBenchScale:
    def test_default(self, conftest_module, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_SCALE", raising=False)
        assert conftest_module.bench_scale() == pytest.approx(0.1)

    def test_env_override(self, conftest_module, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "0.5")
        assert conftest_module.bench_scale() == pytest.approx(0.5)


class TestSaveResult:
    def test_writes_artifact(self, conftest_module, tmp_path, capsys):
        conftest_module.save_result(tmp_path, "unit_test", "hello table")
        path = tmp_path / "unit_test.txt"
        assert path.read_text().startswith("hello table")
        assert "hello table" in capsys.readouterr().out


class TestBenchmarkInventory:
    def test_one_bench_per_paper_artifact(self):
        """Every paper table/figure has a dedicated benchmark module."""
        names = {p.name for p in BENCH_DIR.glob("test_*.py")}
        assert "test_fig4_convergence.py" in names
        assert "test_fig5_mobilenet_tasks.py" in names
        assert "test_table1_end_to_end.py" in names

    def test_all_benchmarks_use_the_fixture(self):
        """--benchmark-only must not silently skip any bench test."""
        import ast

        for path in BENCH_DIR.glob("test_*.py"):
            tree = ast.parse(path.read_text())
            for node in ast.iter_child_nodes(tree):
                if isinstance(node, ast.FunctionDef) and node.name.startswith(
                    "test_"
                ):
                    args = {a.arg for a in node.args.args}
                    assert "benchmark" in args, f"{path.name}:{node.name}"
