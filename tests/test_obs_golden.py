"""Golden trace-skeleton fixture for the observability layer.

Pins the *structure* of the span trace (ids, parents, names, steps,
deterministic attrs — everything except wall-clock timings) and the
deterministic RunSummary of a small BTED+BAO run.  Any change to span
emission, event ordering, or summary bookkeeping shows up as a diff;
deliberate changes regenerate the fixture with::

    pytest tests/test_obs_golden.py --update-golden

A second test pins the non-interference contract: attaching the
observer must not change the tuning trajectory itself.
"""

import json
from pathlib import Path

import pytest

from repro.core import make_tuner
from repro.hardware.measure import SimulatedTask
from repro.nn.workloads import DenseWorkload
from repro.obs import TuningObserver

GOLDEN_PATH = Path(__file__).parent / "golden" / "obs-skeleton-bted_bao.json"

ARM = "bted+bao"
ARM_KWARGS = dict(init_size=8, batch_candidates=32, num_batches=2)
N_TRIAL = 24
TUNER_SEED = 11
ENV_SEED = 7


def _task() -> SimulatedTask:
    return SimulatedTask(
        DenseWorkload(batch=1, in_features=64, out_features=48),
        seed=ENV_SEED,
    )


def _run(observe: bool):
    observer = TuningObserver() if observe else None
    tuner = make_tuner(ARM, _task(), seed=TUNER_SEED, **ARM_KWARGS)
    result = tuner.tune(
        n_trial=N_TRIAL,
        early_stopping=None,
        on_event=[observer] if observer else [],
    )
    return result, observer


def test_golden_obs_skeleton(update_golden):
    _, observer = _run(observe=True)
    document = {
        "arm": ARM,
        "tuner_seed": TUNER_SEED,
        "env_seed": ENV_SEED,
        "n_trial": N_TRIAL,
        "summary": observer.summary().deterministic_dict(),
        "spans": observer.trace.span_skeletons(),
    }
    # normalize through JSON so the comparison sees what is on disk
    document = json.loads(json.dumps(document))
    if update_golden:
        GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
        GOLDEN_PATH.write_text(
            json.dumps(document, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        pytest.skip(f"updated golden fixture {GOLDEN_PATH.name}")
    assert GOLDEN_PATH.exists(), (
        f"missing golden fixture {GOLDEN_PATH}; generate it with "
        "pytest tests/test_obs_golden.py --update-golden"
    )
    golden = json.loads(GOLDEN_PATH.read_text(encoding="utf-8"))
    assert document == golden


def test_observer_does_not_perturb_the_run():
    bare, _ = _run(observe=False)
    observed, _ = _run(observe=True)
    assert [
        (r.step, r.config_index, r.gflops, r.error) for r in bare.records
    ] == [
        (r.step, r.config_index, r.gflops, r.error)
        for r in observed.records
    ]
    assert bare.best_index == observed.best_index
    assert bare.best_gflops == observed.best_gflops
