"""Tests for repro.nn.workloads: shapes, FLOPs, hashing, serialization."""

import pytest

from repro.nn.workloads import (
    Conv2DWorkload,
    DenseWorkload,
    DepthwiseConv2DWorkload,
    arithmetic_intensity,
)
from repro.pipeline.records import workload_from_dict


class TestConv2DWorkload:
    def test_output_shape(self):
        wl = Conv2DWorkload(1, 3, 64, 224, 224, 7, 7, 2, 2, 3, 3)
        assert wl.out_height == 112
        assert wl.out_width == 112

    def test_flops_known_value(self):
        # 3x3 conv, 64->64, 56x56, pad 1: 2*64*3*3 * (64*56*56) FLOPs
        wl = Conv2DWorkload(1, 64, 64, 56, 56, 3, 3, pad_h=1, pad_w=1)
        assert wl.flops == 2 * 64 * 3 * 3 * 64 * 56 * 56

    def test_grouped_conv_flops_divide(self):
        base = Conv2DWorkload(1, 64, 64, 28, 28, 3, 3, pad_h=1, pad_w=1)
        grouped = Conv2DWorkload(
            1, 64, 64, 28, 28, 3, 3, pad_h=1, pad_w=1, groups=4
        )
        assert grouped.flops * 4 == base.flops

    def test_equal_workloads_hash_equal(self):
        a = Conv2DWorkload(1, 8, 8, 14, 14, 3, 3)
        b = Conv2DWorkload(1, 8, 8, 14, 14, 3, 3)
        assert a == b
        assert hash(a) == hash(b)
        assert len({a, b}) == 1

    def test_invalid_groups(self):
        with pytest.raises(ValueError):
            Conv2DWorkload(1, 10, 8, 14, 14, 3, 3, groups=3)

    def test_negative_padding(self):
        with pytest.raises(ValueError):
            Conv2DWorkload(1, 8, 8, 14, 14, 3, 3, pad_h=-1)

    def test_nonpositive_dims(self):
        with pytest.raises(ValueError):
            Conv2DWorkload(0, 8, 8, 14, 14, 3, 3)

    def test_bytes_positive(self):
        wl = Conv2DWorkload(1, 8, 8, 14, 14, 3, 3)
        assert wl.input_bytes > 0
        assert wl.output_bytes > 0

    def test_str_contains_kind(self):
        assert "conv2d" in str(Conv2DWorkload(1, 8, 8, 14, 14, 3, 3))


class TestDepthwiseWorkload:
    def test_output_channels(self):
        wl = DepthwiseConv2DWorkload(1, 32, 112, 112, 3, 3, 1, 1, 1, 1)
        assert wl.out_channels == 32
        assert wl.out_height == 112

    def test_multiplier(self):
        wl = DepthwiseConv2DWorkload(
            1, 16, 14, 14, 3, 3, 1, 1, 1, 1, channel_multiplier=2
        )
        assert wl.out_channels == 32

    def test_flops_scale_with_channels_not_squared(self):
        small = DepthwiseConv2DWorkload(1, 16, 14, 14, 3, 3, 1, 1, 1, 1)
        big = DepthwiseConv2DWorkload(1, 32, 14, 14, 3, 3, 1, 1, 1, 1)
        assert big.flops == 2 * small.flops

    def test_kind(self):
        wl = DepthwiseConv2DWorkload(1, 16, 14, 14, 3, 3)
        assert wl.kind == "depthwise_conv2d"


class TestDenseWorkload:
    def test_flops(self):
        wl = DenseWorkload(1, 1024, 1000)
        assert wl.flops == 2 * 1024 * 1000

    def test_weight_count(self):
        assert DenseWorkload(1, 10, 5).weight_count == 50

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            DenseWorkload(1, 0, 5)


class TestSerialization:
    @pytest.mark.parametrize(
        "wl",
        [
            Conv2DWorkload(1, 8, 16, 14, 14, 3, 3, pad_h=1, pad_w=1),
            DepthwiseConv2DWorkload(1, 16, 14, 14, 3, 3, 2, 2, 1, 1),
            DenseWorkload(2, 64, 48),
        ],
    )
    def test_roundtrip(self, wl):
        assert workload_from_dict(wl.to_dict()) == wl

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            workload_from_dict({"kind": "softmax"})


class TestArithmeticIntensity:
    def test_pointwise_lower_than_spatial(self):
        pointwise = Conv2DWorkload(1, 256, 256, 14, 14, 1, 1)
        spatial = Conv2DWorkload(1, 256, 256, 14, 14, 3, 3, pad_h=1, pad_w=1)
        assert arithmetic_intensity(pointwise) < arithmetic_intensity(spatial)

    def test_depthwise_is_memory_bound(self):
        dw = DepthwiseConv2DWorkload(1, 512, 14, 14, 3, 3, 1, 1, 1, 1)
        assert arithmetic_intensity(dw) < 10
