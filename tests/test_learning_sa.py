"""Tests for repro.learning.sa: model-guided simulated annealing."""

import numpy as np
import pytest

from repro.learning.sa import simulated_annealing_search
from repro.space.knobs import OtherKnob
from repro.space.space import ConfigSpace


def lattice_space(sizes=(16, 16)) -> ConfigSpace:
    space = ConfigSpace("sa")
    for i, size in enumerate(sizes):
        space.add_knob(OtherKnob(f"k{i}", list(range(size))))
    return space


def quadratic_score(space, optimum):
    """Score peaking at a known optimum in knob-index space."""
    target = np.asarray(optimum, dtype=np.float64)

    def score(indices: np.ndarray) -> np.ndarray:
        digits = space.decode_batch(np.asarray(indices))
        return -np.sum((digits - target) ** 2, axis=1).astype(float)

    return score


class TestSearchQuality:
    def test_finds_known_optimum_region(self):
        space = lattice_space((16, 16))
        score = quadratic_score(space, (10, 5))
        plan = simulated_annealing_search(
            space, score, plan_size=8, seed=0, n_chains=32, n_steps=100
        )
        best = space.decode(plan[0])
        assert abs(best[0] - 10) <= 1
        assert abs(best[1] - 5) <= 1

    def test_plan_sorted_by_score(self):
        space = lattice_space()
        score = quadratic_score(space, (3, 3))
        plan = simulated_annealing_search(space, score, plan_size=10, seed=1)
        scores = score(np.array(plan))
        assert (np.diff(scores) <= 1e-12).all()

    def test_beats_random_on_average(self, small_task):
        space = small_task.space
        rng = np.random.default_rng(0)

        def score(indices):
            return small_task.space.feature_matrix(indices).sum(axis=1)

        plan = simulated_annealing_search(
            space, score, plan_size=16, seed=2, n_chains=32, n_steps=60
        )
        random_pick = space.sample(16, seed=3)
        assert score(np.array(plan)).mean() > score(random_pick).mean()


class TestContract:
    def test_plan_is_distinct(self):
        space = lattice_space()
        score = quadratic_score(space, (8, 8))
        plan = simulated_annealing_search(space, score, plan_size=20, seed=4)
        assert len(set(plan)) == len(plan)

    def test_exclusions_respected(self):
        space = lattice_space((8, 8))
        score = quadratic_score(space, (4, 4))
        exclude = set(range(0, len(space), 2))
        plan = simulated_annealing_search(
            space, score, plan_size=10, seed=5, exclude=exclude
        )
        assert not (set(plan) & exclude)

    def test_deterministic(self):
        space = lattice_space()
        score = quadratic_score(space, (2, 12))
        a = simulated_annealing_search(space, score, plan_size=6, seed=6)
        b = simulated_annealing_search(space, score, plan_size=6, seed=6)
        assert a == b

    def test_bad_args(self):
        space = lattice_space()
        score = quadratic_score(space, (0, 0))
        with pytest.raises(ValueError):
            simulated_annealing_search(space, score, plan_size=0)
        with pytest.raises(ValueError):
            simulated_annealing_search(space, score, plan_size=4, n_chains=0)

    def test_plan_size_larger_than_reachable(self):
        space = ConfigSpace("tiny")
        space.add_knob(OtherKnob("k", [0, 1, 2]))
        score = lambda idx: np.zeros(len(idx))
        plan = simulated_annealing_search(
            space, score, plan_size=10, seed=0, n_chains=4, n_steps=10
        )
        assert len(plan) <= 3
