"""Property-based pins on the fault/checkpoint determinism contract.

These are the load-bearing guarantees of the fault-tolerance layer,
checked over *random* fault schedules and crash points rather than
hand-picked cases:

* crash at any batch + resume == uninterrupted run, bit for bit, on
  the record log and the final incumbent;
* retry exhaustion degrades gracefully — ``Tuner.tune`` never raises
  because of injected faults, whatever the schedule;
* BTED's selection step is invariant under reordering of its candidate
  batch (measurement order must not depend on proposal enumeration).
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import make_tuner
from repro.core.checkpoint import CheckpointPolicy
from repro.core.events import CheckpointSaved
from repro.core.ted import ted_select
from repro.hardware.executor import build_executor
from repro.hardware.faults import FaultModel, RetryPolicy
from repro.hardware.measure import SimulatedTask
from repro.nn.workloads import DenseWorkload

from tests.strategies import fault_models, retry_policies

# module-level task (not the function-scoped fixture) so hypothesis can
# reuse it across examples without health-check noise
TASK = SimulatedTask(
    DenseWorkload(batch=1, in_features=64, out_features=48), seed=7
)

PROPERTY = settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def _trace(result):
    return [
        (r.step, r.config_index, r.gflops, r.error) for r in result.records
    ]


ARM_KWARGS = {
    "random": dict(batch_size=8),
    "autotvm": dict(batch_size=8, init_size=8, sa_chains=8, sa_steps=10),
    "bted": dict(batch_size=8, init_size=6, batch_candidates=24),
    "bted+as": dict(batch_size=8, init_size=6, batch_candidates=24),
    "bted+bao": dict(init_size=6, batch_candidates=24, num_batches=2),
    "bted+bao+droplet": dict(
        init_size=6, batch_candidates=24, num_batches=2, finish_after=10
    ),
    "droplet": dict(batch_size=8, init_size=6),
}


def _make(arm, seed, faults, retry):
    def executor_spec(measurer):
        return build_executor(
            measurer, "serial", faults=faults, retry=retry
        )

    return make_tuner(
        arm, TASK, seed=seed, executor=executor_spec, **ARM_KWARGS[arm]
    )


class _Crash(Exception):
    pass


@pytest.mark.slow
class TestCrashResumeProperty:
    @given(
        faults=fault_models(max_rate=0.4),
        retry=retry_policies(),
        crash_batch=st.integers(1, 3),
        seed=st.integers(0, 50),
        arm=st.sampled_from(
            ["autotvm", "bted", "bted+bao", "droplet",
             "bted+as", "bted+bao+droplet"]
        ),
    )
    @PROPERTY
    def test_crash_plus_resume_equals_uninterrupted(
        self, tmp_path_factory, faults, retry, crash_batch, seed, arm
    ):
        path = tmp_path_factory.mktemp("ckpt") / "run.ckpt"
        n_trial = 20

        baseline = _make(arm, seed, faults, retry).tune(
            n_trial=n_trial, early_stopping=None
        )

        def bomb(tuner_, event):
            if isinstance(event, CheckpointSaved) and event.step > 0:
                counts["n"] += 1
                if counts["n"] >= crash_batch:
                    raise _Crash()

        counts = {"n": 0}
        tuner = _make(arm, seed, faults, retry)
        try:
            resumed = tuner.tune(
                n_trial=n_trial,
                early_stopping=None,
                checkpoint=CheckpointPolicy(path=path, every=1),
                on_event=[bomb],
            )
        except _Crash:
            fresh = _make(arm, seed, faults, retry)
            resumed = fresh.resume(path)

        assert _trace(resumed) == _trace(baseline)
        assert resumed.best_index == baseline.best_index
        assert resumed.best_gflops == baseline.best_gflops

    @given(faults=fault_models(max_rate=0.6), retry=retry_policies(),
           seed=st.integers(0, 50))
    @PROPERTY
    def test_retry_exhaustion_never_raises(self, faults, retry, seed):
        tuner = _make("random", seed, faults, retry)
        result = tuner.tune(n_trial=24, early_stopping=None)
        assert result.num_measurements == 24
        # every record is either a real measurement or a graceful error
        for record in result.records:
            assert record.gflops >= 0.0
            assert isinstance(record.error, str)


class TestBTEDSelectionInvariance:
    @given(
        seed=st.integers(0, 1000),
        n=st.integers(8, 40),
        d=st.integers(2, 8),
        m=st.integers(1, 6),
    )
    @settings(max_examples=40, deadline=None)
    def test_ted_select_permutation_invariant(self, seed, n, d, m):
        # continuous random features keep argmax margins far above
        # floating-point reassociation noise, so the selected *set* must
        # not depend on candidate enumeration order
        rng = np.random.default_rng(seed)
        features = rng.uniform(0.0, 1.0, size=(n, d))
        perm = rng.permutation(n)

        base = ted_select(features, m, mu=0.1)
        permuted = ted_select(features[perm], m, mu=0.1)
        assert sorted(perm[permuted]) == sorted(base)
