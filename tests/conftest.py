"""Shared fixtures: small workloads/tasks that keep tests fast.

Markers (registered in ``pyproject.toml``):

* ``slow`` — the long-running conformance and experiment tests (full
  fleet conformance sweeps, the adaptive-arm study, integration-scale
  tunes).  The tier-1 suite runs everything; skip them locally with
  ``-m 'not slow'`` for a fast edit loop.  CI's test job fans the full
  suite over all cores with ``pytest-xdist`` (``-n auto``) — the slow
  tests dominate its wall-clock, which is exactly what xdist absorbs.
  ``pytest-xdist`` is a CI-only dependency: nothing in the suite
  imports it, so a plain ``python -m pytest -x -q`` works anywhere.
"""

import pytest

from repro.hardware.measure import SimulatedTask
from repro.nn.workloads import (
    Conv2DWorkload,
    DenseWorkload,
    DepthwiseConv2DWorkload,
)


def pytest_addoption(parser):
    parser.addoption(
        "--update-golden",
        action="store_true",
        default=False,
        help="regenerate the golden-trace fixtures under tests/golden/ "
        "instead of comparing against them",
    )


@pytest.fixture
def update_golden(request) -> bool:
    """True when the run should rewrite golden fixtures."""
    return request.config.getoption("--update-golden")


@pytest.fixture
def small_conv_workload() -> Conv2DWorkload:
    """A small conv2d whose space has a few hundred thousand points."""
    return Conv2DWorkload(
        batch=1,
        in_channels=8,
        out_channels=16,
        height=14,
        width=14,
        kernel_h=3,
        kernel_w=3,
        pad_h=1,
        pad_w=1,
    )


@pytest.fixture
def dense_workload() -> DenseWorkload:
    """A dense workload with a small, cheap space."""
    return DenseWorkload(batch=1, in_features=64, out_features=48)


@pytest.fixture
def depthwise_workload() -> DepthwiseConv2DWorkload:
    return DepthwiseConv2DWorkload(
        batch=1,
        channels=16,
        height=14,
        width=14,
        kernel_h=3,
        kernel_w=3,
        pad_h=1,
        pad_w=1,
    )


@pytest.fixture
def small_task(small_conv_workload) -> SimulatedTask:
    return SimulatedTask(small_conv_workload, seed=7)


@pytest.fixture
def dense_task(dense_workload) -> SimulatedTask:
    return SimulatedTask(dense_workload, seed=7)
