"""Property tests for the service job store: crash/reopen durability.

The :class:`~repro.service.JobStore` extends the repository's
torn-write contracts (``test_records_fuzz.py`` / ``test_tlog.py``)
onto sqlite: every public method is one committed transaction, so a
SIGKILL between *any* two state transitions is equivalent to closing
the connection and reopening the file.  The Hypothesis machines here
interleave random lifecycle operations with reopen points and prove
the two service invariants:

* **no job is lost** — every submitted job is present with a valid
  state after every crash/reopen sequence;
* **no job is double-run** — ``queued -> running`` is claimed at most
  once per job, across any interleaving and any number of reopens.
"""

import sqlite3
import tempfile
from contextlib import contextmanager
from pathlib import Path

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.service import (
    SCHEMA_VERSION,
    InvalidTransitionError,
    JobNotFoundError,
    JobSpec,
    JobStore,
    JobStoreError,
    SchemaVersionError,
)

COMMON = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@contextmanager
def _fresh_db():
    """A database path private to one Hypothesis example.

    ``tmp_path`` is function-scoped and therefore *shared* across the
    examples of one ``@given`` test — state would leak between runs.
    """
    with tempfile.TemporaryDirectory(prefix="service-store-") as root:
        yield Path(root) / "jobs.sqlite"


def _spec(tenant="default", priority=0):
    return JobSpec(
        model="alexnet",
        arm="bted",
        n_trial=8,
        tenant=tenant,
        priority=priority,
    )


#: one lifecycle operation: (op, argument)
_OPS = st.lists(
    st.one_of(
        st.tuples(st.just("submit"), st.integers(-2, 2)),  # priority
        st.tuples(st.just("claim"), st.none()),
        st.tuples(st.just("finish"), st.sampled_from(["done", "failed"])),
        st.tuples(st.just("cancel"), st.none()),
        st.tuples(st.just("reopen"), st.none()),  # the simulated crash
    ),
    min_size=1,
    max_size=30,
)


class TestCrashReopenProperties:
    @COMMON
    @given(ops=_OPS)
    def test_no_job_lost_and_none_double_run(self, ops):
        """Random op sequences with crashes keep both invariants."""
        with _fresh_db() as path:
            self._check_ops(path, ops)

    @staticmethod
    def _check_ops(path, ops):
        store = JobStore(path)
        submitted = []  # model: every job id ever accepted
        claimed = []  # model: ids in claim order (each at most once)
        running = []  # model: claimed but not yet settled
        try:
            for op, arg in ops:
                if op == "submit":
                    job = store.submit(_spec(priority=arg))
                    submitted.append(job.job_id)
                elif op == "claim":
                    job = store.claim_next()
                    if job is not None:
                        assert job.job_id not in claimed, "double-run!"
                        claimed.append(job.job_id)
                        running.append(job.job_id)
                elif op == "finish" and running:
                    job_id = running.pop(0)
                    store.transition(job_id, arg)
                elif op == "cancel":
                    queued = store.list_jobs(state="queued")
                    if queued:
                        store.transition(queued[0].job_id, "cancelled")
                elif op == "reopen":
                    # the crash: drop the handle, reopen the file
                    store.close()
                    store = JobStore(path)
            # invariant: every submitted job survived with a valid state
            persisted = {j.job_id: j for j in store.list_jobs()}
            assert sorted(persisted) == sorted(submitted)
            for job in persisted.values():
                assert job.state in (
                    "queued", "running", "done", "failed", "cancelled"
                )
            # invariant: claims (attempts > 0) match the model exactly
            attempted = sorted(
                j.job_id for j in persisted.values() if j.attempts > 0
            )
            assert attempted == sorted(claimed)
        finally:
            store.close()

    @COMMON
    @given(
        priorities=st.lists(st.integers(-3, 3), min_size=1, max_size=12),
        crash_at=st.integers(0, 12),
    )
    def test_claim_order_survives_crashes(self, priorities, crash_at):
        """Priority-then-FIFO dequeue order is crash-invariant.

        Submitting N jobs and claiming them all — with one reopen at an
        arbitrary point in the claim loop — must drain in exactly the
        order of (priority desc, submission seq asc).
        """
        with _fresh_db() as path:
            self._check_order(path, priorities, crash_at)

    @staticmethod
    def _check_order(path, priorities, crash_at):
        store = JobStore(path)
        try:
            seqs = {}
            for priority in priorities:
                job = store.submit(_spec(priority=priority))
                seqs[job.job_id] = job.seq
            expected = [
                job_id
                for job_id, _ in sorted(
                    (
                        (j.job_id, (-j.spec.priority, j.seq))
                        for j in store.list_jobs()
                    ),
                    key=lambda item: item[1],
                )
            ]
            drained = []
            for i in range(len(priorities)):
                if i == crash_at:
                    store.close()
                    store = JobStore(path)
                job = store.claim_next()
                assert job is not None
                drained.append(job.job_id)
                store.transition(job.job_id, "done")
            assert drained == expected
            assert store.claim_next() is None
        finally:
            store.close()


class TestRunningJobsResume:
    def test_running_jobs_survive_reopen_without_requeue(self, tmp_path):
        """A crash mid-run leaves the job claimable only via resume."""
        path = tmp_path / "jobs.sqlite"
        store = JobStore(path)
        job = store.submit(_spec())
        assert store.claim_next().job_id == job.job_id
        store.close()

        reopened = JobStore(path)
        try:
            # the job is still running — not silently requeued ...
            assert [j.job_id for j in reopened.running_jobs()] == [
                job.job_id
            ]
            # ... and not claimable a second time
            assert reopened.claim_next() is None
            # recovery settles it through the normal edge
            reopened.transition(job.job_id, "done")
            assert reopened.get(job.job_id).state == "done"
        finally:
            reopened.close()


class TestTransitions:
    def test_illegal_edges_raise_structured_errors(self, tmp_path):
        store = JobStore(tmp_path / "jobs.sqlite")
        try:
            job = store.submit(_spec())
            with pytest.raises(InvalidTransitionError) as excinfo:
                store.transition(job.job_id, "done")  # queued -> done
            assert excinfo.value.to_dict()["error"]["code"] == (
                "invalid_transition"
            )
            store.transition(job.job_id, "cancelled")
            for dead_end in ("running", "done", "failed"):
                with pytest.raises(InvalidTransitionError):
                    store.transition(job.job_id, dead_end)
        finally:
            store.close()

    def test_unknown_job_raises_not_found(self, tmp_path):
        store = JobStore(tmp_path / "jobs.sqlite")
        try:
            with pytest.raises(JobNotFoundError):
                store.get("job-999999")
            with pytest.raises(JobNotFoundError):
                store.transition("job-999999", "running")
        finally:
            store.close()

    def test_timestamps_and_attempts_track_lifecycle(self, tmp_path):
        store = JobStore(tmp_path / "jobs.sqlite")
        try:
            job = store.submit(_spec())
            assert job.created_s > 0 and job.attempts == 0
            claimed = store.claim_next()
            assert claimed.attempts == 1
            assert claimed.started_s is not None
            done = store.transition(job.job_id, "done")
            assert done.finished_s is not None
        finally:
            store.close()


class TestSchemaGuard:
    def test_future_schema_version_is_refused(self, tmp_path):
        path = tmp_path / "jobs.sqlite"
        JobStore(path).close()
        conn = sqlite3.connect(path)
        conn.execute(f"PRAGMA user_version = {SCHEMA_VERSION + 1}")
        conn.commit()
        conn.close()
        with pytest.raises(SchemaVersionError):
            JobStore(path)

    def test_current_version_is_stamped(self, tmp_path):
        path = tmp_path / "jobs.sqlite"
        JobStore(path).close()
        conn = sqlite3.connect(path)
        assert conn.execute("PRAGMA user_version").fetchone()[0] == (
            SCHEMA_VERSION
        )
        conn.close()

    def test_corrupt_file_raises_store_error_naming_path(self, tmp_path):
        path = tmp_path / "jobs.sqlite"
        path.write_bytes(b"this is not a sqlite database, not even close")
        with pytest.raises(JobStoreError) as excinfo:
            JobStore(path)
        assert str(path) in str(excinfo.value)


class TestTaskResults:
    def test_task_result_upsert_is_idempotent(self, tmp_path):
        """Re-collecting a resumed job's tasks lands on identical rows."""
        from repro.core.tuner import TrialRecord, TuningResult

        store = JobStore(tmp_path / "jobs.sqlite")
        try:
            job = store.submit(_spec())
            result = TuningResult(
                task_name="t",
                tuner_name="bted",
                records=[
                    TrialRecord(step=1, config_index=5, gflops=10.0),
                    TrialRecord(step=2, config_index=9, gflops=0.0,
                                error="boom"),
                ],
                best_index=5,
                best_gflops=10.0,
            )
            for _ in range(2):  # first write, then the resume re-write
                store.add_task_result(job.job_id, 0, result)
            records = store.records_for(job.job_id)
            assert records == [
                {"task_id": 0, "step": 1, "config_index": 5,
                 "gflops": 10.0, "error": ""},
                {"task_id": 0, "step": 2, "config_index": 9,
                 "gflops": 0.0, "error": "boom"},
            ]
            [task] = store.tasks_for(job.job_id)
            assert task["best_index"] == 5
            assert task["num_measurements"] == 2
        finally:
            store.close()
