"""Warm-started (incremental) ensemble refits: correctness pins.

``BootstrapEnsemble(refit="incremental")`` reuses each member's grown
trees across refits and fits only ``incremental_rounds`` new boosting
rounds per call — the tuning loop's per-batch refit drops from
O(total rounds) to O(new rounds).  These tests pin the contract:

* with tree reuse *disabled*, the incremental configuration is
  bit-identical to ``refit="full"`` over any sequence of fits
  (checked as a Hypothesis property over random data streams);
* warm-started members accumulate trees, stay deterministic, survive
  pickling (the pipelined loop pickles the tuner every batch), and
  report honest ``reused_trees_total`` accounting;
* ``predict_stats`` — the batched-acquisition entry point — matches
  the per-member accumulation it replaced, in both refit modes.
"""

import pickle

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.bootstrap import BootstrapEnsemble
from repro.learning.gbt import GradientBoostedTrees

PROPERTY = settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def _stream(seed, n0, growths, d):
    """A growing data stream: the cumulative (X, y) after each batch."""
    rng = np.random.default_rng(seed)
    sizes = np.cumsum([n0] + list(growths))
    X = rng.random((int(sizes[-1]), d))
    y = rng.random(int(sizes[-1]))
    return [(X[:int(n)], y[:int(n)]) for n in sizes]


class TestIncrementalMatchesFullWithoutReuse:
    @PROPERTY
    @given(
        seed=st.integers(0, 2**32 - 1),
        n0=st.integers(8, 24),
        growths=st.lists(st.integers(1, 12), min_size=1, max_size=4),
        d=st.integers(2, 8),
    )
    def test_property_bit_identical_predictions(self, seed, n0, growths, d):
        """reuse_trees=False must neutralize the warm-start entirely."""
        full = BootstrapEnsemble(gamma=2, seed=9, refit="full")
        incremental = BootstrapEnsemble(
            gamma=2, seed=9, refit="incremental", reuse_trees=False
        )
        probe = np.random.default_rng(seed + 1).random((32, d))
        for X, y in _stream(seed, n0, growths, d):
            full.fit(X, y)
            incremental.fit(X, y)
            a = full.predict_stats(probe, return_std=True)
            b = incremental.predict_stats(probe, return_std=True)
            assert np.array_equal(a[0], b[0])
            assert np.array_equal(a[1], b[1])
        assert incremental.reused_trees_total == 0


class TestWarmStartedMembers:
    def _data(self, n=40, d=6, seed=0):
        rng = np.random.default_rng(seed)
        return rng.random((n, d)), rng.random(n)

    def test_fit_more_appends_rounds(self):
        X, y = self._data()
        model = GradientBoostedTrees(n_estimators=12, seed=3)
        model.fit(X, y)
        assert model.n_trees == 12
        model.fit_more(X, y, 5)
        assert model.n_trees == 17

    def test_fit_more_is_deterministic(self):
        X, y = self._data()
        probe = self._data(seed=1)[0]
        outs = []
        for _ in range(2):
            model = GradientBoostedTrees(n_estimators=10, seed=4)
            model.fit(X, y)
            model.fit_more(X, y, 6)
            outs.append(model.predict(probe))
        assert np.array_equal(outs[0], outs[1])

    def test_fit_more_reduces_training_error(self):
        X, y = self._data(n=80)
        model = GradientBoostedTrees(
            n_estimators=8, learning_rate=0.3, seed=5
        )
        model.fit(X, y)
        before = float(np.mean((model.predict(X) - y) ** 2))
        model.fit_more(X, y, 16)
        after = float(np.mean((model.predict(X) - y) ** 2))
        assert after < before

    def test_pickle_roundtrip_preserves_predictions(self):
        # the pipelined loop pickles the tuner (ensemble included)
        # every batch; the prediction stack cache must rebuild cleanly
        X, y = self._data()
        probe = self._data(seed=2)[0]
        model = GradientBoostedTrees(n_estimators=10, seed=6)
        model.fit(X, y)
        model.fit_more(X, y, 4)
        expected = model.predict(probe)
        clone = pickle.loads(pickle.dumps(model))
        assert np.array_equal(clone.predict(probe), expected)
        # and the original still predicts identically afterwards
        assert np.array_equal(model.predict(probe), expected)

    def test_ensemble_reuse_accounting(self):
        X, y = self._data()
        ens = BootstrapEnsemble(
            gamma=2, seed=7, refit="incremental", incremental_rounds=4
        )
        ens.fit(X, y)
        assert ens.reused_trees_total == 0  # first fit is always full
        first_trees = [m.n_trees for m in ens._models]
        ens.fit(X, y)
        assert ens.reused_trees_total == sum(first_trees)
        assert [m.n_trees for m in ens._models] == [
            t + 4 for t in first_trees
        ]

    def test_generational_refresh_at_max_trees(self):
        X, y = self._data()
        ens = BootstrapEnsemble(
            gamma=2, seed=8, refit="incremental", incremental_rounds=8,
            max_trees=30,
        )
        ens.fit(X, y)  # 24 trees per member (default factory)
        ens.fit(X, y)  # 24 + 8 > 30: falls back to a from-scratch refit
        assert all(m.n_trees == 24 for m in ens._models)
        assert ens.reused_trees_total == 0


class TestBatchedAcquisition:
    def _members_sum_and_std(self, ens, X):
        preds = np.stack([m.predict(X) for m in ens._models])
        return preds.sum(axis=0), preds.std(axis=0)

    def test_predict_stats_matches_members_full(self):
        rng = np.random.default_rng(10)
        X, y = rng.random((48, 6)), rng.random(48)
        probe = rng.random((64, 6))
        ens = BootstrapEnsemble(gamma=3, seed=11).fit(X, y)
        total, std = ens.predict_stats(probe, return_std=True)
        ref_total, ref_std = self._members_sum_and_std(ens, probe)
        assert np.allclose(total, ref_total)
        assert np.allclose(std, ref_std)
        assert np.array_equal(total, ens.predict_sum(probe))
        assert np.array_equal(std, ens.predict_std(probe))

    def test_predict_stats_matches_members_incremental(self):
        rng = np.random.default_rng(12)
        X, y = rng.random((48, 6)), rng.random(48)
        probe = rng.random((64, 6))
        ens = BootstrapEnsemble(
            gamma=2, seed=13, refit="incremental", incremental_rounds=4
        )
        ens.fit(X[:24], y[:24])
        ens.fit(X, y)  # warm-started: stacked reused + fresh trees
        total, std = ens.predict_stats(probe, return_std=True)
        ref_total, ref_std = self._members_sum_and_std(ens, probe)
        assert np.allclose(total, ref_total)
        assert np.allclose(std, ref_std)
