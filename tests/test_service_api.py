"""Service-level test harness: the full HTTP lifecycle, locked down.

An in-process :class:`~repro.service.TuningService` binds an ephemeral
port and runs real jobs on a two-device fleet.  The headline contract
is *bit-identity*: records fetched over HTTP after submit → queue →
fleet run → poll must equal a direct serial
:meth:`~repro.pipeline.compiler.DeploymentCompiler.tune` with the same
spec, byte for byte.  Around that sit the API behaviours: progress
streaming, the best-curve feed, fleet utilization, the dashboard, the
structured 400/404/409/429 rejections, and tuning-log reuse on a
repeat submit.
"""

import json
import urllib.request

import pytest

from repro.service import ServiceClient, ServiceClientError, TuningService

#: the verified fast recipe: ~0.6 s per job on two simulated devices
SPEC = {
    "model": "alexnet",
    "arm": "bted",
    "n_trial": 16,
    "max_tasks": 2,
    "trial_seed": 3,
    "env_seed": 7,
    "tuner_kwargs": {
        "batch_size": 8,
        "init_size": 8,
        "batch_candidates": 32,
    },
}
DEVICES = "gtx1080ti,gtx1080ti"


def direct_records():
    """The ground truth: a serial tune of the same spec, no service."""
    from repro.nn.zoo import build_model
    from repro.pipeline.compiler import DeploymentCompiler

    compiler = DeploymentCompiler(
        build_model(SPEC["model"]), env_seed=SPEC["env_seed"]
    )
    compiler.tasks = compiler.tasks[: SPEC["max_tasks"]]
    collected = []

    def collect(task_spec, result):
        for rec in result.records:
            collected.append(
                {
                    "task_id": task_spec.task_id,
                    "step": rec.step,
                    "config_index": rec.config_index,
                    "gflops": float(rec.gflops),
                    "error": rec.error,
                }
            )

    compiler.tune(
        SPEC["arm"],
        n_trial=SPEC["n_trial"],
        trial_seed=SPEC["trial_seed"],
        tuner_kwargs=dict(SPEC["tuner_kwargs"]),
        progress=collect,
    )
    return sorted(collected, key=lambda r: (r["task_id"], r["step"]))


@pytest.fixture(scope="module")
def baseline():
    return direct_records()


@pytest.fixture(scope="module")
def service(tmp_path_factory):
    """One live service shared by the module (jobs accumulate)."""
    data_dir = tmp_path_factory.mktemp("service")
    with TuningService(data_dir, port=0, devices=DEVICES) as svc:
        yield svc


@pytest.fixture(scope="module")
def client(service):
    return ServiceClient(service.url, timeout_s=30.0)


@pytest.fixture(scope="module")
def finished_job(client):
    """Submit the canonical job once and wait for it to finish."""
    job = client.submit(**SPEC)
    assert job["state"] == "queued"
    assert job["job_id"].startswith("job-")
    return client.wait(job["job_id"], timeout_s=120.0)


class TestLifecycle:
    def test_health_before_anything(self, client):
        body = client.health()
        assert body["status"] == "ok"

    def test_job_reaches_done_with_all_tasks(self, finished_job):
        assert finished_job["state"] == "done"
        assert finished_job["error"] == ""
        assert finished_job["tasks_done"] == SPEC["max_tasks"]
        assert finished_job["best_gflops"] > 0
        assert finished_job["started_s"] is not None
        assert finished_job["finished_s"] is not None
        for task in finished_job["tasks"]:
            assert task["tuner"] == SPEC["arm"]
            assert task["num_measurements"] > 0
            assert task["summary"]  # deterministic RunSummary snapshot

    def test_records_bit_identical_to_direct_tune(
        self, client, finished_job, baseline
    ):
        """The tentpole acceptance check: HTTP records == serial tune."""
        body = client.records(finished_job["job_id"])
        assert body["state"] == "done"
        assert body["records"] == baseline

    def test_progress_stream_covers_the_run(self, client, finished_job):
        progress = client.progress(finished_job["job_id"], since=0)
        kinds = [p["kind"] for p in progress["points"]]
        assert "batch" in kinds  # best-curve points from events
        assert kinds.count("task_done") == SPEC["max_tasks"]
        assert kinds[-1] == "done"
        # cursor polling: re-reading past the end returns nothing new
        again = client.progress(
            finished_job["job_id"], since=progress["next"]
        )
        assert again["points"] == []
        assert again["next"] == progress["next"]
        # per-task RunSummary snapshots rode along
        assert len(progress["summaries"]) == SPEC["max_tasks"]
        for summary in progress["summaries"].values():
            assert summary["best_gflops"] > 0

    def test_curve_feed_is_monotone_best_so_far(
        self, client, finished_job, baseline
    ):
        body = client.curve(finished_job["job_id"])
        assert len(body["curves"]) == SPEC["max_tasks"]
        for series in body["curves"].values():
            assert series == sorted(series)  # best-so-far never drops
        # the curve tip matches the baseline's per-task best
        best = {}
        for rec in baseline:
            if not rec["error"]:
                best[rec["task_id"]] = max(
                    best.get(rec["task_id"], 0.0), rec["gflops"]
                )
        for task_id, series in sorted(body["curves"].items()):
            task_best = best[int(task_id.split("-")[1])]
            assert series[-1] == pytest.approx(task_best, rel=1e-6)

    def test_fleet_report_attached_and_aggregated(
        self, client, finished_job
    ):
        detail = client.job(finished_job["job_id"])
        report = detail["fleet_report"]
        assert len(report["devices"]) == 2
        [device_class] = report["by_class"]
        assert report["by_class"][device_class]["devices"] == 2
        fleet = client.fleet()
        assert fleet["devices"] == DEVICES
        by_class = fleet["by_class"][device_class]
        assert by_class["measurements"] > 0
        assert by_class["utilization"] == 1.0  # single-class fleet

    def test_jobs_listing_and_filters(self, client, finished_job):
        rows = client.jobs()
        assert any(r["job_id"] == finished_job["job_id"] for r in rows)
        assert client.jobs(state="done")
        assert client.jobs(tenant="nobody-ever") == []

    def test_second_submit_served_from_tuning_log(
        self, client, finished_job, baseline
    ):
        """An identical spec re-submitted is a tlog exact hit: every
        task answered from the log with zero fresh measurements, at the
        same best performance the measured run found."""
        repeat = client.submit(**SPEC)
        done = client.wait(repeat["job_id"], timeout_s=120.0)
        assert done["state"] == "done"
        best = {}
        for rec in baseline:
            if not rec["error"]:
                best[rec["task_id"]] = max(
                    best.get(rec["task_id"], 0.0), rec["gflops"]
                )
        for task in done["tasks"]:
            assert task["tuner"] == "tlog"
            assert task["num_measurements"] == 0
            assert task["best_gflops"] == pytest.approx(
                best[task["task_id"]], rel=1e-6
            )
        # zero measurements means zero fresh records — by design
        assert client.records(repeat["job_id"])["records"] == []


class TestDashboard:
    def test_dashboard_serves_html(self, service):
        with urllib.request.urlopen(service.url + "/") as response:
            assert response.status == 200
            assert "text/html" in response.headers["Content-Type"]
            html = response.read().decode("utf-8")
        assert "repro tuning service" in html
        # the dashboard is a client of the public API, not a side door
        for endpoint in ("/api/jobs", "/api/fleet"):
            assert endpoint in html


class TestStructuredErrors:
    def test_unknown_model_is_a_400(self, client):
        with pytest.raises(ServiceClientError) as excinfo:
            client.submit(**{**SPEC, "model": "not-a-model"})
        assert excinfo.value.status == 400
        assert excinfo.value.code == "invalid_job"

    def test_unknown_field_is_a_400(self, client):
        with pytest.raises(ServiceClientError) as excinfo:
            client.submit(**SPEC, frobnicate=True)
        assert excinfo.value.status == 400
        assert excinfo.value.code == "invalid_job"

    def test_malformed_json_body_is_a_400(self, service):
        request = urllib.request.Request(
            service.url + "/api/jobs",
            data=b"{not json",
            method="POST",
            headers={"Content-Type": "application/json"},
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request)
        assert excinfo.value.code == 400
        body = json.loads(excinfo.value.read().decode("utf-8"))
        assert body["error"]["code"] == "invalid_job"

    def test_unknown_job_is_a_404(self, client):
        with pytest.raises(ServiceClientError) as excinfo:
            client.job("job-999999")
        assert excinfo.value.status == 404
        assert excinfo.value.code == "job_not_found"
        assert excinfo.value.body["error"]["job_id"] == "job-999999"

    def test_unknown_endpoint_is_a_404(self, client):
        with pytest.raises(ServiceClientError) as excinfo:
            client._request("GET", "/api/nonsense")
        assert excinfo.value.status == 404

    def test_cancel_finished_job_is_a_409(self, client, finished_job):
        with pytest.raises(ServiceClientError) as excinfo:
            client.cancel(finished_job["job_id"])
        assert excinfo.value.status == 409
        assert excinfo.value.code == "invalid_transition"


class TestAdmissionOverHTTP:
    """Quota/priority/cancel behaviour through the HTTP surface.

    A runner-less service keeps jobs queued, so admission decisions
    are observable without racing job execution.
    """

    @pytest.fixture()
    def parked(self, tmp_path):
        svc = TuningService(
            tmp_path / "parked",
            port=0,
            devices=DEVICES,
            quotas={"capped": 1},
            start_runner=False,
        )
        with svc:
            yield ServiceClient(svc.url, timeout_s=10.0)

    def test_over_quota_submit_is_a_429(self, parked):
        parked.submit(**SPEC, tenant="capped")
        with pytest.raises(ServiceClientError) as excinfo:
            parked.submit(**SPEC, tenant="capped")
        assert excinfo.value.status == 429
        error = excinfo.value.body["error"]
        assert error["code"] == "quota_exceeded"
        assert error["tenant"] == "capped"
        assert error["limit"] == 1
        assert error["active"] == 1

    def test_cancel_frees_the_quota_slot(self, parked):
        job = parked.submit(**SPEC, tenant="capped")
        cancelled = parked.cancel(job["job_id"])
        assert cancelled["state"] == "cancelled"
        parked.submit(**SPEC, tenant="capped")  # admitted again

    def test_priority_orders_the_queue(self, parked):
        low = parked.submit(**SPEC, priority=0)
        high = parked.submit(**SPEC, priority=9)
        fleet = parked.fleet()
        assert fleet["queue_depth"] >= 2
        # the store *is* the queue: peek via the jobs listing
        queued = parked.jobs(state="queued")
        by_id = {j["job_id"]: j["priority"] for j in queued}
        assert by_id[high["job_id"]] > by_id[low["job_id"]]
