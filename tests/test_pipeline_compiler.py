"""Tests for repro.pipeline.compiler: deployment and latency evaluation."""

import numpy as np
import pytest

from repro.nn.graph import GraphBuilder
from repro.pipeline.compiler import CompiledModel, DeploymentCompiler, KernelTiming
from repro.pipeline.records import RecordStore


def tiny_model():
    b = GraphBuilder("tiny-model")
    b.input((1, 3, 16, 16))
    b.conv2d("c1", 8, padding=(1, 1))
    b.relu("r1")
    b.pool2d("p1")
    b.conv2d("c2", 16, padding=(1, 1))
    b.relu("r2")
    b.flatten("f")
    b.dense("fc", 10)
    return b.graph


@pytest.fixture
def compiler():
    return DeploymentCompiler(tiny_model(), env_seed=5)


class TestDeploymentCompiler:
    def test_task_extraction(self, compiler):
        assert len(compiler.tasks) == 2

    def test_tune_returns_compiled_model(self, compiler):
        compiled = compiler.tune("random", n_trial=32, early_stopping=None)
        assert isinstance(compiled, CompiledModel)
        assert compiled.base_latency_ms > 0
        assert len(compiled.tuning_results) == 2

    def test_kernels_cover_tuned_and_untuned(self, compiler):
        compiled = compiler.tune("random", n_trial=32, early_stopping=None)
        tuned = [k for k in compiled.kernels if k.tuned]
        untuned = [k for k in compiled.kernels if not k.tuned]
        assert len(tuned) == 2
        assert len(untuned) >= 3  # input, pool, flatten/dense, ...

    def test_record_store_integration(self, compiler):
        store = RecordStore()
        compiler.tune("random", n_trial=32, early_stopping=None,
                      record_store=store)
        assert len(store) == 32 * 1 or len(store) == 64  # 2 tasks x 32

    def test_compile_from_records_matches_tuned(self, compiler):
        store = RecordStore()
        compiled = compiler.tune(
            "random", n_trial=32, early_stopping=None, record_store=store
        )
        replayed = compiler.compile_from_records(store)
        assert replayed.base_latency_ms == pytest.approx(
            compiled.base_latency_ms
        )

    def test_compile_from_empty_records_uses_defaults(self, compiler):
        compiled = compiler.compile_from_records(RecordStore())
        assert compiled.base_latency_ms > 0

    def test_environment_fixed_across_arms(self):
        """Different arms must face identical task environments."""
        a = DeploymentCompiler(tiny_model(), env_seed=5)
        b = DeploymentCompiler(tiny_model(), env_seed=5)
        spec = a.tasks[0]
        idx = int(a.simulated_task(spec).space.sample(1, seed=0)[0])
        assert a.simulated_task(spec).true_gflops(idx) == pytest.approx(
            b.simulated_task(spec).true_gflops(idx)
        )

    def test_progress_callback(self, compiler):
        calls = []
        compiler.tune(
            "random",
            n_trial=16,
            early_stopping=None,
            progress=lambda spec, result: calls.append(spec.task_id),
        )
        assert calls == [0, 1]


class TestLatencyMeasurement:
    def make_compiled(self, sigma=0.02):
        kernels = [
            KernelTiming("a", 1e-4, sigma, True),
            KernelTiming("b", 2e-4, sigma, True),
        ]
        from repro.hardware.device import GTX_1080_TI

        return CompiledModel("m", GTX_1080_TI, kernels)

    def test_mean_near_base(self):
        compiled = self.make_compiled()
        sample = compiled.measure_latency(num_runs=2000, seed=0)
        assert sample.mean_ms == pytest.approx(compiled.base_latency_ms,
                                               rel=0.02)

    def test_deterministic_given_seed(self):
        compiled = self.make_compiled()
        a = compiled.measure_latency(num_runs=100, seed=1)
        b = compiled.measure_latency(num_runs=100, seed=1)
        assert np.allclose(a.latencies_ms, b.latencies_ms)

    def test_noisier_kernels_give_higher_variance(self):
        quiet = self.make_compiled(sigma=0.01)
        noisy = self.make_compiled(sigma=0.08)
        vq = quiet.measure_latency(num_runs=1500, seed=2).variance
        vn = noisy.measure_latency(num_runs=1500, seed=2).variance
        assert vn > 3 * vq

    def test_positive_latencies(self):
        sample = self.make_compiled(sigma=0.3).measure_latency(
            num_runs=500, seed=3
        )
        assert (sample.latencies_ms > 0).all()

    def test_std_matches_variance(self):
        sample = self.make_compiled().measure_latency(num_runs=300, seed=4)
        assert sample.std_ms == pytest.approx(np.sqrt(sample.variance))

    def test_needs_two_runs(self):
        with pytest.raises(ValueError):
            self.make_compiled().measure_latency(num_runs=1)
