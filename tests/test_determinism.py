"""End-to-end determinism: identical inputs produce identical outputs.

Reproducibility is a design requirement (DESIGN.md §6): every
stochastic component is seeded, so repeating any experiment with the
same seeds must yield byte-identical results.
"""

import numpy as np

from repro.core import make_tuner
from repro.experiments.fig4 import run_fig4
from repro.experiments.settings import ExperimentSettings
from repro.nn.zoo import build_model
from repro.pipeline.compiler import DeploymentCompiler

TINY = ExperimentSettings(
    init_size=8,
    n_trial=24,
    early_stopping=None,
    batch_size=8,
    batch_candidates=32,
    num_batches=2,
    num_runs=100,
    num_trials=1,
    env_seed=123,
)


class TestTunerDeterminism:
    def test_every_arm_is_deterministic(self, dense_task):
        for arm in ("random", "grid", "ga", "autotvm", "bted", "bted+bao"):
            runs = []
            for _ in range(2):
                tuner = make_tuner(
                    arm, dense_task, seed=7, **TINY.tuner_kwargs(arm)
                )
                result = tuner.tune(n_trial=20, early_stopping=None)
                runs.append(
                    (
                        [r.config_index for r in result.records],
                        [r.gflops for r in result.records],
                    )
                )
            assert runs[0] == runs[1], arm


class TestPipelineDeterminism:
    def test_compile_twice_identical(self):
        graph = build_model("squeezenet-v1.1")
        latencies = []
        for _ in range(2):
            compiler = DeploymentCompiler(graph, env_seed=5)
            compiled = compiler.tune(
                "random", n_trial=16, early_stopping=None, trial_seed=3
            )
            sample = compiled.measure_latency(num_runs=100, seed=9)
            latencies.append(sample.latencies_ms)
        assert np.array_equal(latencies[0], latencies[1])


class TestEngineDeterminism:
    """The experiment engine reproduces the serial loops exactly."""

    def _cells(self):
        from repro.experiments.engine import ExperimentCell
        from repro.pipeline.tasks import extract_tasks

        tasks = [
            spec.to_simulated(seed=TINY.env_seed)
            for spec in extract_tasks(build_model("squeezenet-v1.1"))[:2]
        ]
        return [
            ExperimentCell(
                arm=arm,
                task=task,
                trial=0,
                n_trial=16,
                early_stopping=None,
                key=(task.name, arm),
            )
            for task in tasks
            for arm in ("autotvm", "bted", "bted+bao")
        ]

    def test_parallel_cells_match_serial(self):
        from repro.experiments.engine import ExperimentEngine

        outcomes = []
        for jobs in (1, 2):
            with ExperimentEngine(TINY, jobs=jobs) as engine:
                results = engine.run_cells(self._cells())
            outcomes.append([r.records for r in results])
        assert outcomes[0] == outcomes[1]

    def test_fig4_parallel_matches_serial(self):
        curves = []
        for jobs in (1, 2):
            result = run_fig4(
                num_layers=1,
                arms=("random",),
                settings=TINY,
                num_measurements=16,
                num_trials=2,
                jobs=jobs,
            )
            curves.append(result.curves[(0, "random")])
        assert np.array_equal(curves[0], curves[1])


class TestExperimentDeterminism:
    def test_fig4_reproducible(self):
        results = [
            run_fig4(
                num_layers=1,
                arms=("random",),
                settings=TINY,
                num_measurements=16,
                num_trials=1,
            )
            for _ in range(2)
        ]
        a = results[0].curves[(0, "random")]
        b = results[1].curves[(0, "random")]
        assert np.array_equal(a, b)
