"""Tests for repro.hardware.device."""

import dataclasses

import pytest

from repro.hardware.device import GTX_1080_TI, JETSON_TX2, TESLA_V100, GpuDevice


class TestPresets:
    def test_gtx_1080_ti_spec(self):
        assert GTX_1080_TI.num_sms == 28
        assert GTX_1080_TI.peak_gflops == pytest.approx(11340.0)
        assert GTX_1080_TI.mem_bandwidth_gbs == pytest.approx(484.0)
        assert GTX_1080_TI.warp_size == 32

    def test_derived_quantities(self):
        assert GTX_1080_TI.max_warps_per_sm == 64
        assert GTX_1080_TI.peak_flops == pytest.approx(11.34e12)
        assert GTX_1080_TI.mem_bandwidth == pytest.approx(484e9)

    def test_device_ordering_makes_sense(self):
        assert JETSON_TX2.peak_gflops < GTX_1080_TI.peak_gflops
        assert GTX_1080_TI.peak_gflops < TESLA_V100.peak_gflops

    def test_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            GTX_1080_TI.num_sms = 1


class TestValidation:
    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            GpuDevice(name="bad", num_sms=0, peak_gflops=1.0,
                      mem_bandwidth_gbs=1.0)

    def test_rejects_bad_cache_factor(self):
        with pytest.raises(ValueError):
            GpuDevice(
                name="bad",
                num_sms=1,
                peak_gflops=1.0,
                mem_bandwidth_gbs=1.0,
                cache_factor=1.5,
            )
