"""Tests for repro.hardware.device."""

import dataclasses

import pytest

from repro.hardware.cost_model import AnalyticalGpuModel
from repro.hardware.device import (
    DEVICE_PRESETS,
    GTX_1080_TI,
    JETSON_TX2,
    TESLA_V100,
    TITAN_V,
    XEON_GOLD_6130,
    GpuDevice,
    _normalize_device_name,
    device_preset,
    normalize_device_name,
)
from repro.hardware.resources import ResourceError
from repro.nn.workloads import Conv2DWorkload

#: every strictly-positive numeric field of the device model
NUMERIC_FIELDS = (
    "num_sms",
    "peak_gflops",
    "mem_bandwidth_gbs",
    "max_threads_per_sm",
    "max_threads_per_block",
    "max_blocks_per_sm",
    "shared_mem_per_sm",
    "shared_mem_per_block",
    "registers_per_sm",
    "max_registers_per_thread",
    "warp_size",
    "launch_overhead_s",
)


class TestPresets:
    def test_gtx_1080_ti_spec(self):
        assert GTX_1080_TI.num_sms == 28
        assert GTX_1080_TI.peak_gflops == pytest.approx(11340.0)
        assert GTX_1080_TI.mem_bandwidth_gbs == pytest.approx(484.0)
        assert GTX_1080_TI.warp_size == 32

    def test_derived_quantities(self):
        assert GTX_1080_TI.max_warps_per_sm == 64
        assert GTX_1080_TI.peak_flops == pytest.approx(11.34e12)
        assert GTX_1080_TI.mem_bandwidth == pytest.approx(484e9)

    def test_device_ordering_makes_sense(self):
        assert JETSON_TX2.peak_gflops < GTX_1080_TI.peak_gflops
        assert GTX_1080_TI.peak_gflops < TESLA_V100.peak_gflops

    def test_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            GTX_1080_TI.num_sms = 1


class TestValidation:
    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            GpuDevice(name="bad", num_sms=0, peak_gflops=1.0,
                      mem_bandwidth_gbs=1.0)

    @pytest.mark.parametrize("field", NUMERIC_FIELDS)
    @pytest.mark.parametrize("bad", [0, -1])
    def test_rejects_each_nonpositive_field(self, field, bad):
        kwargs = {f: getattr(GTX_1080_TI, f) for f in NUMERIC_FIELDS}
        kwargs[field] = bad
        with pytest.raises(ValueError, match=field):
            GpuDevice(name="bad", **kwargs)

    def test_rejects_bad_cache_factor(self):
        with pytest.raises(ValueError):
            GpuDevice(
                name="bad",
                num_sms=1,
                peak_gflops=1.0,
                mem_bandwidth_gbs=1.0,
                cache_factor=1.5,
            )

    def test_rejects_zero_cache_factor(self):
        with pytest.raises(ValueError):
            GpuDevice(name="bad", num_sms=1, peak_gflops=1.0,
                      mem_bandwidth_gbs=1.0, cache_factor=0.0)


class TestTitanV:
    def test_spec(self):
        assert TITAN_V.num_sms == 80
        assert TITAN_V.peak_gflops == pytest.approx(14900.0)
        assert TITAN_V.mem_bandwidth_gbs == pytest.approx(652.8)

    def test_sits_between_1080ti_and_nothing(self):
        assert TITAN_V.peak_gflops > GTX_1080_TI.peak_gflops
        assert TITAN_V.mem_bandwidth_gbs > GTX_1080_TI.mem_bandwidth_gbs

    def test_distinct_from_1080ti_beyond_throughput(self):
        # the zoo is only heterogeneous if presets differ in the knobs
        # that shape the optimum, not just in peak rates
        assert TITAN_V.cache_factor < GTX_1080_TI.cache_factor
        assert TITAN_V.launch_overhead_s < GTX_1080_TI.launch_overhead_s
        assert TITAN_V.shared_mem_per_block > GTX_1080_TI.shared_mem_per_block


class TestJetsonTx2:
    def test_embedded_penalties(self):
        assert JETSON_TX2.launch_overhead_s > GTX_1080_TI.launch_overhead_s
        assert JETSON_TX2.cache_factor > GTX_1080_TI.cache_factor
        assert JETSON_TX2.max_blocks_per_sm < GTX_1080_TI.max_blocks_per_sm


class TestXeonGold:
    def test_cpu_shape(self):
        assert XEON_GOLD_6130.warp_size == 8
        assert XEON_GOLD_6130.max_threads_per_block == 256
        assert XEON_GOLD_6130.max_threads_per_sm == 256
        assert XEON_GOLD_6130.num_sms == 16

    def test_cpu_handles(self):
        assert device_preset("cpu") is XEON_GOLD_6130
        assert device_preset("xeongold6130") is XEON_GOLD_6130
        assert device_preset("Xeon Gold 6130") is XEON_GOLD_6130


class TestNormalizeDeviceName:
    def test_public_helper(self):
        assert normalize_device_name("GeForce GTX 1080 Ti") == "geforcegtx1080ti"
        assert normalize_device_name("Titan V") == "titanv"
        assert normalize_device_name("Xeon Gold 6130") == "xeongold6130"

    def test_deprecated_alias_is_same_function(self):
        assert _normalize_device_name is normalize_device_name


class TestPresetRegistry:
    def test_known_handles(self):
        assert device_preset("gtx1080ti") is GTX_1080_TI
        assert device_preset("titanv") is TITAN_V
        assert device_preset("v100") is TESLA_V100
        assert device_preset("tx2") is JETSON_TX2

    def test_normalization(self):
        assert device_preset("GTX-1080-Ti") is GTX_1080_TI
        assert device_preset("Titan V") is TITAN_V

    def test_full_name_lookup(self):
        assert device_preset("GeForce GTX 1080 Ti") is GTX_1080_TI
        assert device_preset("Tesla V100") is TESLA_V100

    def test_unknown_raises_with_known_list(self):
        with pytest.raises(ValueError, match="gtx1080ti"):
            device_preset("gtx9999")

    def test_registry_values_are_valid_devices(self):
        for handle, dev in DEVICE_PRESETS.items():
            assert isinstance(dev, GpuDevice), handle


class TestHeterogeneousCostModelPinning:
    """Pin the analytical model's throughput on each preset.

    A fleet mixes presets, so drift in any preset's simulated
    throughput silently changes heterogeneous experiments; these values
    were recorded from the released model (6 decimals) and must only
    change with a deliberate model revision.
    """

    WORKLOAD = Conv2DWorkload(1, 64, 64, 56, 56, 3, 3, pad_h=1, pad_w=1)
    #: a fat 896-thread block — great on the 1080 Ti, infeasible on the
    #: CPU profile (256-thread block ceiling)
    CONFIG = {
        "tile_f": (2, 2, 16, 1),
        "tile_y": (4, 1, 7, 2),
        "tile_x": (7, 1, 8, 1),
        "tile_rc": (8, 8),
        "tile_ry": (1, 3),
        "tile_rx": (1, 3),
        "auto_unroll_max_step": 512,
        "unroll_explicit": 1,
    }
    #: a slim 128-thread block — feasible everywhere, and the faster of
    #: the two on the high-occupancy Volta parts
    SMALL_CONFIG = {
        "tile_f": (8, 2, 4, 1),
        "tile_y": (14, 1, 4, 1),
        "tile_x": (7, 1, 8, 1),
        "tile_rc": (8, 8),
        "tile_ry": (1, 3),
        "tile_rx": (1, 3),
        "auto_unroll_max_step": 512,
        "unroll_explicit": 1,
    }
    #: jetsontx2/titanv values revised with the device-zoo rework
    #: (distinct launch overhead / cache factor / residency limits)
    PINNED_GFLOPS = {
        "gtx1080ti": 7676.98779,
        "teslav100": 5084.082529,
        "jetsontx2": 512.143826,
        "titanv": 5413.932454,
    }
    PINNED_SMALL_GFLOPS = {
        "gtx1080ti": 5784.893499,
        "teslav100": 8483.285811,
        "jetsontx2": 503.855873,
        "titanv": 8927.191632,
        "xeongold6130": 1460.697893,
    }

    @pytest.mark.parametrize("handle", sorted(PINNED_GFLOPS))
    def test_pinned_throughput(self, handle):
        model = AnalyticalGpuModel(device_preset(handle))
        profile = model.profile(self.WORKLOAD, self.CONFIG)
        assert profile.gflops == pytest.approx(
            self.PINNED_GFLOPS[handle], abs=1e-6
        )

    @pytest.mark.parametrize("handle", sorted(PINNED_SMALL_GFLOPS))
    def test_pinned_small_block_throughput(self, handle):
        model = AnalyticalGpuModel(device_preset(handle))
        profile = model.profile(self.WORKLOAD, self.SMALL_CONFIG)
        assert profile.gflops == pytest.approx(
            self.PINNED_SMALL_GFLOPS[handle], abs=1e-6
        )

    def test_cpu_rejects_fat_blocks(self):
        model = AnalyticalGpuModel(XEON_GOLD_6130)
        with pytest.raises(ResourceError, match="exceeds device limit"):
            model.profile(self.WORKLOAD, self.CONFIG)

    def test_optimal_config_depends_on_device(self):
        # the zoo is real: the same two candidates rank differently
        # across device classes, so per-device tuning finds different
        # winners (the premise of the crossdevice experiment)
        def ranks(handle):
            model = AnalyticalGpuModel(device_preset(handle))
            big = model.profile(self.WORKLOAD, self.CONFIG).gflops
            small = model.profile(self.WORKLOAD, self.SMALL_CONFIG).gflops
            return big > small

        assert ranks("gtx1080ti") is True
        assert ranks("titanv") is False
        assert ranks("teslav100") is False
