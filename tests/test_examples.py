"""Smoke tests: every example script runs end-to-end.

Each script is executed in a subprocess with a tiny measurement budget;
the tests assert a zero exit code and the expected headline output.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).parent.parent / "examples"


def run_example(name: str, *args: str) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert result.returncode == 0, result.stderr
    return result.stdout


class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py", "--budget", "32")
        assert "GFLOPS" in out
        assert "random" in out
        assert "bted+bao" in out

    def test_end_to_end_deployment(self):
        out = run_example(
            "end_to_end_deployment.py",
            "--budget", "8", "--arm", "random", "--runs", "50",
            "--model", "squeezenet-v1.1",
        )
        assert "mean latency" in out
        assert "identical deployment" in out

    def test_convergence_study(self):
        out = run_example(
            "convergence_study.py", "--budget", "32", "--trials", "1",
            "--layers", "1",
        )
        assert "Fig. 4" in out

    def test_transfer_learning_demo(self):
        out = run_example(
            "transfer_learning_demo.py", "--budget", "24", "--tasks", "2"
        )
        assert "with transfer history" in out
        assert "aggregate GFLOPS" in out

    def test_custom_operator_and_device(self):
        out = run_example("custom_operator_and_device.py", "--budget", "24")
        assert "GTX 1080 Ti" in out
        assert "Jetson TX2" in out

    def test_alternative_evaluation_functions(self):
        out = run_example(
            "alternative_evaluation_functions.py", "--budget", "24"
        )
        assert "MLP regressor" in out
        assert "rank-objective GBT" in out

    def test_winograd_template_selection(self):
        out = run_example(
            "winograd_template_selection.py", "--budget", "16",
            "--model", "resnet-18",
        )
        assert "template choice" in out
        assert "end-to-end" in out
