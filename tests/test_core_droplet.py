"""Tests for the coordinate-descent exploit arm and adaptive sampling."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import make_tuner
from repro.core.droplet import CoordinateDescent, DropletSettings
from repro.core.events import (
    CandidatesPruned,
    EventLog,
    ExploitStepped,
    FinishPhaseStarted,
    IncumbentImproved,
)
from repro.core.tuners.bted import BTEDTuner
from repro.core.tuners.btedbao import BTEDBAOTuner
from repro.core.tuners.droplet import DropletTuner
from repro.space.knobs import OtherKnob
from repro.space.space import ConfigSpace


def lattice_space(sizes=(6, 6, 6)) -> ConfigSpace:
    space = ConfigSpace("lattice")
    for i, size in enumerate(sizes):
        space.add_knob(OtherKnob(f"k{i}", list(range(size))))
    return space


class TestDropletSettings:
    def test_validation(self):
        with pytest.raises(ValueError):
            DropletSettings(initial_step=0)
        with pytest.raises(ValueError):
            DropletSettings(initial_step=4, max_step=2)
        with pytest.raises(ValueError):
            DropletSettings(max_restart_draws=0)


class TestCoordinateDescent:
    def test_no_incumbent_proposes_nothing(self):
        policy = CoordinateDescent(lattice_space())
        assert policy.propose(None, 0.0, np.empty(0, np.int64)) == []

    def test_sweeps_axes_of_the_incumbent(self):
        space = lattice_space()
        policy = CoordinateDescent(space)
        center = space.encode([3, 3, 3])
        batch = policy.propose(center, 1.0, np.empty(0, np.int64))
        assert len(batch) == 6
        for idx in batch:
            digits = np.array(space.decode(idx))
            assert np.abs(digits - 3).sum() == 1

    def test_improvement_recenter_resets_step(self):
        space = lattice_space()
        policy = CoordinateDescent(space)
        a = space.encode([3, 3, 3])
        visited = np.array(sorted([a]), dtype=np.int64)
        policy.propose(a, 1.0, visited)
        policy.step = 4  # pretend the sweep escalated
        b = space.encode([0, 0, 0])
        policy.propose(b, 2.0, visited)
        assert policy.center == b
        # re-centering restarted the line search at the initial step;
        # the post-propose step may have doubled past visited shells
        # but never reflects the stale escalation
        assert policy.center_score == 2.0

    def test_doubles_step_when_shell_visited(self):
        space = lattice_space((9,))
        policy = CoordinateDescent(space, DropletSettings(restart=False))
        center = space.encode([4])
        # mark the +-1 shell visited; only +-2 remains fresh
        visited = np.array(
            sorted([space.encode([3]), space.encode([5])]), dtype=np.int64
        )
        batch = policy.propose(center, 1.0, visited)
        assert sorted(space.decode(i)[0] for i in batch) == [2, 6]
        assert policy.step == 2

    def test_fully_visited_space_reports_exhaustion(self):
        space = lattice_space((3,))
        policy = CoordinateDescent(space, seed=5)
        center = space.encode([1])
        visited = np.array(
            sorted([space.encode([0]), space.encode([1]), space.encode([2])]),
            dtype=np.int64,
        )
        # every point measured: restarts cannot draw anything fresh
        assert policy.propose(center, 1.0, visited) == []
        assert policy.exhausted

    def test_restart_finds_fresh_point(self):
        space = lattice_space((3, 3))
        policy = CoordinateDescent(space, seed=5)
        center = space.encode([1, 1])
        # measure the full axis cross around the center: every sweep at
        # any step clamps onto a visited point, forcing a restart
        cross = [[1, 1], [0, 1], [2, 1], [1, 0], [1, 2]]
        visited = np.array(
            sorted(space.encode(d) for d in cross), dtype=np.int64
        )
        batch = policy.propose(center, 1.0, visited)
        assert len(batch) == 1
        assert batch[0] not in visited.tolist()
        assert policy.restarts == 1
        assert policy.center == batch[0]
        assert policy.step == 1

    def test_no_restart_reports_exhaustion(self):
        space = lattice_space((5,))
        policy = CoordinateDescent(space, DropletSettings(restart=False))
        center = space.encode([2])
        visited = np.array(
            sorted(space.encode([d]) for d in range(5)), dtype=np.int64
        )
        assert policy.propose(center, 1.0, visited) == []
        assert policy.exhausted

    @settings(max_examples=50, deadline=None)
    @given(
        st.lists(st.integers(2, 7), min_size=1, max_size=3),
        st.integers(0, 2**31 - 1),
        st.integers(0, 2**31 - 1),
    )
    def test_property_never_revisits(self, sizes, center_seed, visited_seed):
        """Proposals are always in range and never in ``visited``."""
        space = lattice_space(tuple(sizes))
        rng = np.random.default_rng(visited_seed)
        n = len(space)
        center = int(np.random.default_rng(center_seed).integers(0, n))
        visited_set = set(
            rng.choice(n, size=rng.integers(0, n), replace=False).tolist()
        )
        visited_set.add(center)
        visited = np.array(sorted(visited_set), dtype=np.int64)
        policy = CoordinateDescent(space, seed=visited_seed)
        batch = policy.propose(center, 1.0, visited)
        assert len(set(batch)) == len(batch)
        for idx in batch:
            assert 0 <= idx < n
            assert idx not in visited_set


class TestDropletTuner:
    def test_exploits_past_the_random_baseline(self, dense_task):
        random_best = make_tuner("random", dense_task, seed=11).tune(
            n_trial=96, early_stopping=None
        ).best_gflops
        droplet_best = DropletTuner(
            dense_task, seed=11, init_size=16
        ).tune(n_trial=96, early_stopping=None).best_gflops
        assert droplet_best > random_best

    def test_emits_exploit_events(self, dense_task):
        log = EventLog()
        DropletTuner(dense_task, seed=3, init_size=8).tune(
            n_trial=48, early_stopping=None, on_event=[log]
        )
        sweeps = log.of_type(ExploitStepped)
        assert sweeps
        assert all(e.step_size >= 1 for e in sweeps)

    def test_deterministic(self, dense_task):
        runs = [
            DropletTuner(dense_task, seed=7, init_size=8).tune(
                n_trial=64, early_stopping=None
            )
            for _ in range(2)
        ]
        assert [r.config_index for r in runs[0].records] == [
            r.config_index for r in runs[1].records
        ]

    def test_no_duplicate_measurements(self, dense_task):
        result = DropletTuner(dense_task, seed=1, init_size=8).tune(
            n_trial=96, early_stopping=None
        )
        indices = [r.config_index for r in result.records]
        assert len(set(indices)) == len(indices)

    def test_sweep_centers_on_measured_configs(self, dense_task):
        log = EventLog()
        result = DropletTuner(dense_task, seed=5, init_size=8).tune(
            n_trial=64, early_stopping=None, on_event=[log]
        )
        sweeps = log.of_type(ExploitStepped)
        assert log.of_type(IncumbentImproved) and sweeps
        measured = {r.config_index for r in result.records}
        restarts = [e.restarts for e in sweeps]
        assert restarts == sorted(restarts)  # restarts only accumulate
        for event in sweeps:
            # centers are incumbents or restart draws — either way they
            # end up measured (a restart point is proposed immediately)
            assert event.center in measured
            assert event.step_size >= 1

    def test_init_size_validation(self, dense_task):
        with pytest.raises(ValueError):
            DropletTuner(dense_task, init_size=0)


class TestAdaptiveSampling:
    def test_bted_as_prunes_batches(self, dense_task):
        log = EventLog()
        tuner = make_tuner(
            "bted+as", dense_task, seed=9, batch_size=16, init_size=16,
            batch_candidates=32, adaptive_keep=0.5,
        )
        tuner.tune(n_trial=64, early_stopping=None, on_event=[log])
        pruned = log.of_type(CandidatesPruned)
        assert pruned
        for event in pruned:
            assert event.kept < event.proposed
            assert event.dropped == event.proposed - event.kept

    def test_adaptive_batches_are_smaller(self, dense_task):
        def batch_sizes(arm, **kwargs):
            log = EventLog()
            make_tuner(
                arm, dense_task, seed=9, batch_size=16, init_size=16,
                batch_candidates=32, **kwargs,
            ).tune(n_trial=80, early_stopping=None, on_event=[log])
            sizes = [
                len(e.results)
                for e in log.events
                if e.kind == "batch_measured"
            ]
            return sizes[1:]  # drop the (identical) init batch

        # iterative batches shrink to ~keep fraction of the plan
        plain = batch_sizes("bted")
        adaptive = batch_sizes("bted+as", adaptive_keep=0.5)
        assert max(adaptive) < max(plain)

    def test_adaptive_keep_validation(self, dense_task):
        with pytest.raises(ValueError):
            BTEDTuner(dense_task, adaptive_keep=0.0)
        with pytest.raises(ValueError):
            BTEDBAOTuner(dense_task, adaptive_keep=1.5)

    def test_keep_one_still_measures(self, dense_task):
        result = make_tuner(
            "bted+as", dense_task, seed=2, batch_size=8, init_size=8,
            batch_candidates=24, adaptive_keep=0.01, epsilon_greedy=0.0,
        ).tune(n_trial=24, early_stopping=None)
        assert result.num_measurements == 24

    def test_off_by_default_is_identical(self, dense_task):
        base = make_tuner(
            "bted", dense_task, seed=4, batch_size=8, init_size=8,
            batch_candidates=24,
        ).tune(n_trial=32, early_stopping=None)
        flagged = BTEDTuner(
            dense_task, seed=4, batch_size=8, init_size=8,
            batch_candidates=24, adaptive_sampling=False,
        ).tune(n_trial=32, early_stopping=None)
        assert [r.config_index for r in base.records] == [
            r.config_index for r in flagged.records
        ]


class TestFinishPhase:
    def test_finish_after_hands_over(self, dense_task):
        log = EventLog()
        tuner = BTEDBAOTuner(
            dense_task, seed=6, init_size=8, batch_candidates=24,
            num_batches=2, finish="droplet", finish_after=16,
        )
        tuner.tune(n_trial=48, early_stopping=None, on_event=[log])
        handoffs = log.of_type(FinishPhaseStarted)
        assert len(handoffs) == 1
        assert handoffs[0].policy == "droplet"
        assert handoffs[0].step >= 16
        sweeps = log.of_type(ExploitStepped)
        assert sweeps
        assert all(e.step >= handoffs[0].step for e in sweeps)

    def test_stagnation_handoff(self, dense_task):
        log = EventLog()
        tuner = BTEDBAOTuner(
            dense_task, seed=6, init_size=8, batch_candidates=24,
            num_batches=2, finish="droplet", finish_stagnation=1,
        )
        tuner.tune(n_trial=48, early_stopping=None, on_event=[log])
        assert len(log.of_type(FinishPhaseStarted)) == 1

    def test_registry_variant_defaults_to_droplet_finish(self, dense_task):
        tuner = make_tuner(
            "bted+bao+droplet", dense_task, seed=1, init_size=8,
            batch_candidates=24, num_batches=2,
        )
        assert tuner.finish == "droplet"
        assert tuner.droplet is not None

    def test_no_finish_by_default(self, dense_task):
        tuner = BTEDBAOTuner(
            dense_task, seed=1, init_size=8, batch_candidates=24,
            num_batches=2,
        )
        assert tuner.finish is None and tuner.droplet is None

    def test_unknown_finish_rejected(self, dense_task):
        with pytest.raises(ValueError):
            BTEDBAOTuner(dense_task, finish="anneal")
        with pytest.raises(ValueError):
            BTEDBAOTuner(dense_task, finish="droplet", finish_after=0)
        with pytest.raises(ValueError):
            BTEDBAOTuner(
                dense_task, finish="droplet", finish_stagnation=0
            )
