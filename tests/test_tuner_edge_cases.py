"""Edge-case behaviour of the tuning loop shared across arms."""

import pytest

from repro.core import make_tuner
from repro.core.tuners.random import RandomTuner
from repro.hardware.measure import SimulatedTask
from repro.nn.workloads import DenseWorkload


@pytest.fixture
def tiny_task():
    """A space small enough to exhaust within a test."""
    return SimulatedTask(DenseWorkload(1, 6, 6), seed=0)


class TestSpaceExhaustion:
    @pytest.mark.parametrize("arm", ["random", "ga", "autotvm"])
    def test_arm_stops_at_space_size(self, arm, tiny_task):
        tuner = make_tuner(arm, tiny_task, seed=0)
        result = tuner.tune(n_trial=100_000, early_stopping=None)
        assert result.num_measurements <= len(tiny_task.space)
        indices = [r.config_index for r in result.records]
        assert len(set(indices)) == len(indices)

    def test_exhaustive_run_finds_global_optimum(self, tiny_task):
        tuner = RandomTuner(tiny_task, seed=0, batch_size=16)
        result = tuner.tune(n_trial=100_000, early_stopping=None)
        truth = max(
            tiny_task.true_gflops(i) for i in range(len(tiny_task.space))
        )
        # measured best is the noisy observation of the true optimum's
        # neighborhood; allow measurement-noise slack
        assert result.best_gflops >= 0.8 * truth


class TestBudgetBoundaries:
    def test_budget_smaller_than_init(self, small_task):
        tuner = make_tuner("autotvm", small_task, seed=0, init_size=64)
        result = tuner.tune(n_trial=10, early_stopping=None)
        assert result.num_measurements == 10

    def test_budget_of_one(self, small_task):
        result = make_tuner("random", small_task, seed=0).tune(
            n_trial=1, early_stopping=None
        )
        assert result.num_measurements == 1
        assert result.best_index is not None

    def test_early_stopping_equal_to_budget(self, small_task):
        result = make_tuner("random", small_task, seed=0).tune(
            n_trial=32, early_stopping=32
        )
        assert result.num_measurements <= 32


class TestResultIntegrity:
    def test_steps_are_sequential(self, small_task):
        result = make_tuner("random", small_task, seed=0).tune(
            n_trial=20, early_stopping=None
        )
        assert [r.step for r in result.records] == list(range(1, 21))

    def test_wall_time_recorded(self, small_task):
        result = make_tuner("random", small_task, seed=0).tune(
            n_trial=8, early_stopping=None
        )
        assert result.wall_time_s > 0

    def test_best_index_none_when_all_invalid(self, small_task):
        from tests.test_failure_injection import AllFailMeasurer

        tuner = make_tuner("random", small_task, seed=0)
        tuner.measurer = AllFailMeasurer(small_task, seed=0)
        result = tuner.tune(n_trial=8, early_stopping=None)
        assert result.best_index is None
        assert result.best_gflops == 0.0
