"""Golden fixture for a small fleet run.

One pinned scenario — the bted arm on a two-task model, sharded over a
two-device fleet with fault injection, drained by a single worker so
even the steal schedule is deterministic — and its complete observable
output: the scheduling report (assignments, steals, per-device ordinal
spans), the per-task deterministic summaries, the fleet-level summary
aggregate, and the per-task span-trace skeletons.  Any change to
sharding, ordinal bookkeeping, fault scheduling, or summary merging
shows up as a diff; deliberate changes regenerate the fixture with::

    pytest tests/test_fleet_golden.py --update-golden
"""

import json
from pathlib import Path

import pytest

from repro.fleet import (
    device_ordinal_spans,
    fleet_report_dict,
    write_device_summaries,
)
from repro.hardware.faults import FaultModel
from repro.nn.graph import GraphBuilder
from repro.obs import RunObservation
from repro.obs.summary import DURATION_FIELDS
from repro.pipeline.compiler import DeploymentCompiler

GOLDEN_PATH = Path(__file__).parent / "golden" / "fleet-bted.json"

ARM = "bted"
ARM_KWARGS = dict(batch_size=8, init_size=6, batch_candidates=24)
N_TRIAL = 16
FLEET = "gtx1080ti,titanv"


def _model():
    b = GraphBuilder("fleet-golden")
    b.input((1, 3, 16, 16))
    b.conv2d("c1", 8, padding=(1, 1))
    b.relu("r1")
    b.conv2d("c2", 12, padding=(1, 1))
    b.relu("r2")
    b.flatten("f")
    b.dense("fc", 10)
    return b.graph


def _strip_durations(aggregate):
    out = {
        k: v for k, v in aggregate.items() if k not in DURATION_FIELDS
    }
    out["by_arm"] = {
        arm: {k: v for k, v in row.items() if k not in DURATION_FIELDS}
        for arm, row in aggregate["by_arm"].items()
    }
    return out


def _run_fleet(tmp_path):
    compiler = DeploymentCompiler(_model(), env_seed=123)
    observation = RunObservation(enable_metrics=False, enable_trace=True)
    compiled = compiler.tune(
        ARM,
        n_trial=N_TRIAL,
        early_stopping=None,
        trial_seed=0,
        tuner_kwargs=ARM_KWARGS,
        faults=FaultModel(rate=0.25, seed=13),
        observation=observation,
        fleet=FLEET,
        fleet_jobs=1,  # single worker: the steal schedule is golden too
    )
    result = compiled.fleet
    measurements = {
        key: res.num_measurements for key, res in result.results.items()
    }
    device_ordinal_spans(result, measurements)
    summaries = {}
    for key in observation.keys():
        summary = observation.observer(key).summary()
        summary.task = summary.task or key
        summaries[key] = summary
    aggregate = write_device_summaries(tmp_path, result, summaries)
    return {
        "arm": ARM,
        "fleet": FLEET,
        "n_trial": N_TRIAL,
        "report": fleet_report_dict(result, measurements),
        "summaries": {
            key: summary.deterministic_dict()
            for key, summary in summaries.items()
        },
        "aggregate": _strip_durations(aggregate),
        "trace_skeletons": {
            key: observation.observer(key).trace.span_skeletons()
            for key in observation.keys()
        },
    }


def test_golden_fleet_run(tmp_path, update_golden):
    snapshot = json.loads(json.dumps(_run_fleet(tmp_path)))
    if update_golden:
        GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
        GOLDEN_PATH.write_text(
            json.dumps(snapshot, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        pytest.skip(f"updated golden fixture {GOLDEN_PATH.name}")
    assert GOLDEN_PATH.exists(), (
        f"missing golden fixture {GOLDEN_PATH}; generate it with "
        "pytest tests/test_fleet_golden.py --update-golden"
    )
    golden = json.loads(GOLDEN_PATH.read_text(encoding="utf-8"))
    assert snapshot == golden


def test_golden_fleet_fixture_exists():
    """The fixture is committed (catches a forgotten --update-golden)."""
    assert GOLDEN_PATH.exists()
