"""Tests for repro.learning.tree: exact and binned regression trees."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.learning.tree import (
    BinnedRegressionTree,
    RegressionTree,
    apply_bins,
    bin_features,
)


def step_data(n=200, seed=0):
    """Data with an exact axis-aligned step: a tree should nail it."""
    rng = np.random.default_rng(seed)
    X = rng.uniform(0, 1, size=(n, 3))
    y = np.where(X[:, 1] > 0.5, 2.0, -1.0)
    return X, y


class TestRegressionTree:
    def test_learns_a_step(self):
        X, y = step_data()
        tree = RegressionTree(max_depth=2).fit(X, y)
        pred = tree.predict(X)
        assert np.abs(pred - y).max() < 1e-9

    def test_stump_is_mean(self):
        X = np.ones((10, 2))  # constant features: no split possible
        y = np.arange(10.0)
        tree = RegressionTree(max_depth=3).fit(X, y)
        assert tree.predict(X) == pytest.approx(np.full(10, y.mean()))

    def test_max_depth_respected(self):
        X, y = step_data(300)
        y = y + np.sin(X[:, 0] * 20)  # force deeper structure
        tree = RegressionTree(max_depth=3).fit(X, y)
        assert tree.depth <= 3

    def test_min_samples_leaf(self):
        X, y = step_data(40)
        tree = RegressionTree(max_depth=8, min_samples_leaf=10).fit(X, y)
        # count samples routed to each leaf
        pred = tree.predict(X)
        for value in np.unique(pred):
            assert (pred == value).sum() >= 10

    def test_sample_weight_shifts_leaf_values(self):
        X = np.zeros((4, 1))
        y = np.array([0.0, 0.0, 10.0, 10.0])
        w = np.array([1.0, 1.0, 0.0001, 0.0001])
        tree = RegressionTree(max_depth=1).fit(X, y, sample_weight=w)
        assert tree.predict(np.zeros((1, 1)))[0] < 0.1

    def test_input_validation(self):
        with pytest.raises(ValueError):
            RegressionTree().fit(np.ones(5), np.ones(5))
        with pytest.raises(ValueError):
            RegressionTree().fit(np.ones((5, 2)), np.ones(4))
        with pytest.raises(ValueError):
            RegressionTree().fit(np.empty((0, 2)), np.empty(0))
        with pytest.raises(RuntimeError):
            RegressionTree().predict(np.ones((2, 2)))

    def test_bad_hyperparams(self):
        with pytest.raises(ValueError):
            RegressionTree(max_depth=0)
        with pytest.raises(ValueError):
            RegressionTree(min_samples_leaf=0)
        with pytest.raises(ValueError):
            RegressionTree(max_features=1.5)

    @given(st.integers(0, 10**6))
    @settings(max_examples=10, deadline=None)
    def test_predictions_within_target_range(self, seed):
        rng = np.random.default_rng(seed)
        X = rng.normal(size=(50, 4))
        y = rng.normal(size=50)
        tree = RegressionTree(max_depth=4).fit(X, y)
        pred = tree.predict(X)
        assert pred.min() >= y.min() - 1e-9
        assert pred.max() <= y.max() + 1e-9


class TestBinning:
    def test_codes_in_range(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(100, 5))
        codes, edges = bin_features(X, n_bins=8)
        assert codes.min() >= 0
        assert codes.max() < 8
        assert len(edges) == 5

    def test_apply_bins_consistent(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(100, 3))
        codes, edges = bin_features(X, n_bins=8)
        assert (apply_bins(X, edges) == codes).all()

    def test_constant_column(self):
        X = np.ones((50, 2))
        codes, edges = bin_features(X, n_bins=8)
        assert (codes == codes[0]).all()

    def test_monotone(self):
        X = np.linspace(0, 1, 64)[:, None]
        codes, _ = bin_features(X, n_bins=8)
        assert (np.diff(codes[:, 0]) >= 0).all()

    def test_bad_args(self):
        with pytest.raises(ValueError):
            bin_features(np.ones(5))
        with pytest.raises(ValueError):
            bin_features(np.ones((5, 2)), n_bins=1)


class TestBinnedTree:
    def test_learns_a_step_on_codes(self):
        rng = np.random.default_rng(0)
        codes = rng.integers(0, 16, size=(300, 3))
        y = np.where(codes[:, 1] > 7, 2.0, -1.0)
        tree = BinnedRegressionTree(n_bins=16, max_depth=3).fit(codes, y)
        pred = tree.predict(codes)
        assert np.abs(pred - y).max() < 1e-9

    def test_learns_step_through_binning_approximately(self):
        X, y = step_data(300)
        codes, _ = bin_features(X, n_bins=16)
        tree = BinnedRegressionTree(n_bins=16, max_depth=3).fit(codes, y)
        pred = tree.predict(codes)
        # quantile edges rarely align exactly with the step at 0.5, so a
        # few boundary samples may be off — but not more than a bin's worth
        assert np.mean(np.abs(pred - y) > 1e-6) < 0.1

    def test_agrees_with_exact_tree_on_binned_data(self):
        rng = np.random.default_rng(3)
        codes = rng.integers(0, 8, size=(200, 4))
        y = codes[:, 0] * 1.0 + (codes[:, 2] > 4) * 3.0
        binned = BinnedRegressionTree(n_bins=8, max_depth=4).fit(codes, y)
        exact = RegressionTree(max_depth=4).fit(codes.astype(float), y)
        a = binned.predict(codes)
        b = exact.predict(codes.astype(float))
        # identical split family -> identical training error profile
        assert np.mean((a - y) ** 2) == pytest.approx(
            np.mean((b - y) ** 2), rel=0.05, abs=1e-9
        )

    def test_min_samples_leaf(self):
        rng = np.random.default_rng(1)
        codes = rng.integers(0, 16, size=(60, 3))
        y = rng.normal(size=60)
        tree = BinnedRegressionTree(
            n_bins=16, max_depth=6, min_samples_leaf=10
        ).fit(codes, y)
        pred = tree.predict(codes)
        values, counts = np.unique(pred, return_counts=True)
        assert counts.min() >= 10

    def test_constant_target_single_node(self):
        codes = np.random.default_rng(0).integers(0, 8, size=(30, 2))
        tree = BinnedRegressionTree(n_bins=8).fit(codes, np.full(30, 5.0))
        assert tree.node_count == 1
        assert tree.predict(codes) == pytest.approx(np.full(30, 5.0))

    def test_sample_weight(self):
        codes = np.array([[0], [0], [7], [7]])
        y = np.array([0.0, 0.0, 10.0, 10.0])
        w = np.array([1.0, 1.0, 1e-6, 1e-6])
        tree = BinnedRegressionTree(n_bins=8, max_depth=1,
                                    min_samples_leaf=1).fit(codes, y, w)
        assert tree.predict(np.array([[0]]))[0] == pytest.approx(0.0, abs=0.1)

    def test_validation(self):
        tree = BinnedRegressionTree(n_bins=8)
        with pytest.raises(ValueError):
            tree.fit(np.ones((5, 2)) * 9, np.ones(5))  # codes out of range
        with pytest.raises(ValueError):
            tree.fit(np.empty((0, 2)), np.empty(0))
        with pytest.raises(RuntimeError):
            BinnedRegressionTree(n_bins=8).predict(np.zeros((2, 2), int))
        with pytest.raises(ValueError):
            BinnedRegressionTree(n_bins=1)

    @given(st.integers(0, 10**6))
    @settings(max_examples=10, deadline=None)
    def test_predictions_within_range(self, seed):
        rng = np.random.default_rng(seed)
        codes = rng.integers(0, 16, size=(60, 5))
        y = rng.normal(size=60)
        tree = BinnedRegressionTree(n_bins=16, max_depth=5).fit(codes, y)
        pred = tree.predict(codes)
        assert pred.min() >= y.min() - 1e-9
        assert pred.max() <= y.max() + 1e-9
