"""Tests for repro.core.ted (Algorithm 1)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.ted import rbf_kernel, ted_select
from repro.utils.mathx import pairwise_sq_dists


class TestRbfKernel:
    def test_diagonal_is_one(self):
        X = np.random.default_rng(0).normal(size=(10, 3))
        K = rbf_kernel(X)
        assert np.allclose(np.diag(K), 1.0)

    def test_symmetric_psd_entries(self):
        X = np.random.default_rng(1).normal(size=(8, 4))
        K = rbf_kernel(X)
        assert np.allclose(K, K.T)
        assert (K > 0).all()
        assert (K <= 1.0 + 1e-12).all()

    def test_distance_monotone(self):
        X = np.array([[0.0], [1.0], [5.0]])
        K = rbf_kernel(X)
        assert K[0, 1] > K[0, 2]

    def test_identical_points_fallback(self):
        X = np.ones((5, 3))
        K = rbf_kernel(X)
        assert np.allclose(K, 1.0)

    def test_single_point(self):
        assert rbf_kernel(np.ones((1, 3))).shape == (1, 1)

    def test_explicit_bandwidth(self):
        X = np.array([[0.0], [1.0]])
        K = rbf_kernel(X, bandwidth=1.0)
        assert K[0, 1] == pytest.approx(np.exp(-0.5))

    def test_bad_bandwidth(self):
        with pytest.raises(ValueError):
            rbf_kernel(np.ones((2, 2)), bandwidth=0.0)

    def test_requires_2d(self):
        with pytest.raises(ValueError):
            rbf_kernel(np.ones(3))


class TestTedSelect:
    def test_selects_m_distinct(self):
        X = np.random.default_rng(0).normal(size=(50, 4))
        picked = ted_select(X, m=10)
        assert len(picked) == 10
        assert len(set(picked)) == 10
        assert all(0 <= i < 50 for i in picked)

    def test_m_clipped_to_n(self):
        X = np.random.default_rng(0).normal(size=(5, 2))
        assert len(ted_select(X, m=20)) == 5

    def test_empty_input(self):
        assert ted_select(np.empty((0, 3)), m=4) == []

    def test_bad_args(self):
        X = np.ones((5, 2))
        with pytest.raises(ValueError):
            ted_select(X, m=0)
        with pytest.raises(ValueError):
            ted_select(X, m=2, mu=-1.0)
        with pytest.raises(ValueError):
            ted_select(np.ones(5), m=2)

    def test_picks_cluster_representatives(self):
        """Three tight clusters: the first three picks must cover all
        three clusters (the defining behaviour of TED)."""
        rng = np.random.default_rng(3)
        centers = np.array([[0.0, 0.0], [10.0, 0.0], [0.0, 10.0]])
        X = np.vstack([
            center + 0.05 * rng.normal(size=(20, 2)) for center in centers
        ])
        picked = ted_select(X, m=3)
        clusters = {i // 20 for i in picked}
        assert clusters == {0, 1, 2}

    def test_more_diverse_than_random(self):
        rng = np.random.default_rng(5)
        X = rng.normal(size=(200, 6))
        picked = ted_select(X, m=16)
        ted_min = _min_pairwise(X[picked])
        random_mins = []
        for seed in range(10):
            rows = np.random.default_rng(seed).choice(200, 16, replace=False)
            random_mins.append(_min_pairwise(X[rows]))
        assert ted_min > np.mean(random_mins)

    def test_deterministic(self):
        X = np.random.default_rng(0).normal(size=(40, 3))
        assert ted_select(X, m=8) == ted_select(X, m=8)

    @given(st.integers(0, 10**6), st.integers(2, 12))
    @settings(max_examples=15, deadline=None)
    def test_distinct_property(self, seed, m):
        X = np.random.default_rng(seed).normal(size=(30, 4))
        picked = ted_select(X, m=m)
        assert len(set(picked)) == min(m, 30)


def _min_pairwise(X: np.ndarray) -> float:
    sq = pairwise_sq_dists(X, X)
    iu = np.triu_indices(len(X), k=1)
    return float(np.sqrt(sq[iu].min()))
