"""Tests for repro.hardware.noise: terrain and measurement jitter."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.hardware.noise import MeasurementNoise, TaskTerrain


class TestTaskTerrain:
    def test_bounds(self):
        terrain = TaskTerrain(feature_dim=6, seed=0, amplitude=0.2)
        rng = np.random.default_rng(1)
        factors = terrain.factor_batch(rng.normal(size=(500, 6)))
        assert factors.min() >= 1.0 - 0.2 - 1e-9
        assert factors.max() <= 1.0 + 1e-9

    def test_deterministic_per_seed(self):
        x = np.random.default_rng(0).normal(size=(10, 4))
        a = TaskTerrain(4, seed=5).factor_batch(x)
        b = TaskTerrain(4, seed=5).factor_batch(x)
        assert np.allclose(a, b)

    def test_different_seeds_different_fields(self):
        x = np.random.default_rng(0).normal(size=(50, 4))
        a = TaskTerrain(4, seed=5).factor_batch(x)
        b = TaskTerrain(4, seed=6).factor_batch(x)
        assert not np.allclose(a, b)

    def test_local_smoothness(self):
        """Nearby feature vectors must have nearby terrain values — the
        assumption BAO's neighborhood search leans on."""
        terrain = TaskTerrain(8, seed=3, amplitude=0.15)
        rng = np.random.default_rng(2)
        base = rng.normal(size=(200, 8))
        nearby = base + 0.01 * rng.normal(size=base.shape)
        delta = np.abs(
            terrain.factor_batch(base) - terrain.factor_batch(nearby)
        )
        assert delta.max() < 0.01

    def test_global_variation(self):
        terrain = TaskTerrain(8, seed=3, amplitude=0.15)
        rng = np.random.default_rng(2)
        factors = terrain.factor_batch(rng.normal(scale=4.0, size=(500, 8)))
        assert factors.std() > 0.01  # the field is not flat

    def test_scalar_factor(self):
        terrain = TaskTerrain(4, seed=1)
        x = np.ones(4)
        assert terrain.factor(x) == pytest.approx(
            float(terrain.factor_batch(x[None, :])[0])
        )

    def test_shape_validation(self):
        terrain = TaskTerrain(4, seed=1)
        with pytest.raises(ValueError):
            terrain.factor_batch(np.ones((3, 5)))

    def test_bad_args(self):
        with pytest.raises(ValueError):
            TaskTerrain(0, seed=1)
        with pytest.raises(ValueError):
            TaskTerrain(4, seed=1, amplitude=1.5)


class TestMeasurementNoise:
    def test_factors_positive(self):
        noise = MeasurementNoise(seed=0)
        factors = noise.sample_time_factors(0.5, n=10_000)
        assert (factors > 0).all()

    def test_zero_sigma_is_exact(self):
        noise = MeasurementNoise(seed=0)
        assert np.allclose(noise.sample_time_factors(0.0, n=5), 1.0)

    def test_scale(self):
        noise = MeasurementNoise(seed=0)
        factors = noise.sample_time_factors(0.05, n=20_000)
        assert factors.std() == pytest.approx(0.05, rel=0.1)
        assert factors.mean() == pytest.approx(1.0, abs=0.005)

    def test_negative_sigma_rejected(self):
        with pytest.raises(ValueError):
            MeasurementNoise(seed=0).sample_time_factors(-0.1)

    @given(st.floats(0.0, 0.3), st.integers(1, 100))
    @settings(max_examples=25, deadline=None)
    def test_always_positive(self, sigma, n):
        factors = MeasurementNoise(seed=1).sample_time_factors(sigma, n=n)
        assert (factors > 0).all()
