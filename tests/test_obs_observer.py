"""Tests for repro.obs: observer, run summaries, and resume-aware state.

The determinism contract under test: a run that crashes at any batch
and resumes from its checkpoint produces a :class:`RunSummary`
(``deterministic_dict``) and trace span skeletons bit-identical to an
uninterrupted run of the same configuration.
"""

import json
import logging

import pytest

from repro.core import make_tuner
from repro.core.callbacks import LogProgress
from repro.core.checkpoint import CheckpointPolicy
from repro.core.events import (
    BatchMeasured,
    EventLog,
    IncumbentImproved,
)
from repro.experiments.fig5 import run_fig5
from repro.experiments.settings import ExperimentSettings
from repro.obs import (
    RunObservation,
    RunSummary,
    TuningObserver,
    aggregate_summaries,
    aggregate_summary_dir,
    hooks,
    write_summary_json,
)

ARM_KWARGS = {
    "bted": dict(batch_size=8, init_size=6, batch_candidates=24),
    "bted+bao": dict(init_size=6, batch_candidates=24, num_batches=2),
}


def _crash_after(tuner, n_batches, path, n_trial, callbacks=(), on_event=()):
    """Run ``tune`` but abort after ``n_batches`` checkpointed batches."""

    class _Crash(Exception):
        pass

    seen = [0]

    def bomb(tuner_, event):
        if event.kind == "checkpoint_saved" and event.step > 0:
            seen[0] += 1
            if seen[0] >= n_batches:
                raise _Crash()

    with pytest.raises(_Crash):
        tuner.tune(
            n_trial=n_trial,
            early_stopping=None,
            checkpoint=CheckpointPolicy(path=path, every=1),
            callbacks=list(callbacks),
            on_event=list(on_event) + [bomb],
        )


class TestObserverSummary:
    def test_counts_match_event_log(self, dense_task):
        log, obs = EventLog(), TuningObserver()
        tuner = make_tuner("bted", dense_task, seed=11, **ARM_KWARGS["bted"])
        result = tuner.tune(
            n_trial=24, early_stopping=None, on_event=[log, obs]
        )
        s = obs.summary()
        assert s.arm == tuner.name
        assert s.seed == 11
        assert s.task == str(dense_task.workload)
        assert s.num_measurements == result.num_measurements
        assert s.batches == len(log.of_type(BatchMeasured))
        assert s.improvements == len(log.of_type(IncumbentImproved))
        assert s.best_index == result.best_index
        assert s.best_gflops == pytest.approx(result.best_gflops, abs=1e-6)
        assert len(s.best_curve) == s.batches
        assert s.best_curve == sorted(s.best_curve)
        assert s.best_curve[-1] == pytest.approx(s.best_gflops)
        assert not s.early_stopped and not s.resumed
        assert s.num_errors == sum(
            1 for r in result.records if r.error
        )

    def test_span_tree_structure(self, dense_task):
        obs = TuningObserver()
        tuner = make_tuner(
            "bted+bao", dense_task, seed=11, **ARM_KWARGS["bted+bao"]
        )
        tuner.tune(n_trial=24, early_stopping=None, on_event=[obs])
        s = obs.summary()
        roots = obs.trace.by_name("tune")
        assert len(roots) == 1
        root = roots[0]
        assert root["parent_id"] is None
        assert root["duration_s"] is not None
        assert root["attrs"]["num_measurements"] == s.num_measurements
        steps = obs.trace.by_name("step")
        assert len(steps) == s.batches
        for span in steps:
            assert span["parent_id"] == root["span_id"]
        assert len(obs.trace.by_name("propose")) == s.batches
        assert len(obs.trace.by_name("measure")) == s.batches
        refits = obs.trace.by_name("refit")
        assert s.refits > 0, "BAO refits its ensemble via the hook bus"
        assert len(refits) == s.refits
        for span in refits:
            assert span["parent_id"] == root["span_id"]

    def test_metrics_mirror_summary(self, dense_task):
        obs = TuningObserver()
        tuner = make_tuner("bted", dense_task, seed=11, **ARM_KWARGS["bted"])
        result = tuner.tune(n_trial=24, early_stopping=None, on_event=[obs])
        flat = obs.metrics.as_dict()
        s = obs.summary()
        assert flat["batches_total"] == s.batches
        assert flat["measurements_total"] == result.num_measurements
        assert flat["refits_total"] == s.refits
        assert flat["measured"] == s.num_measurements
        assert flat["executor_batches_serial_total"] == s.batches
        text = obs.metrics.render_prometheus()
        assert "repro_measurements_total" in text

    def test_hooks_deregistered_after_tune(self, dense_task):
        obs = TuningObserver()
        tuner = make_tuner("random", dense_task, seed=3, batch_size=8)
        tuner.tune(n_trial=8, early_stopping=None, on_event=[obs])
        assert not hooks.refit_hooks_active()
        assert not hooks.measure_hooks_active()

    def test_disabled_outputs_keep_summary(self, dense_task):
        obs = TuningObserver(enable_metrics=False, enable_trace=False)
        tuner = make_tuner("random", dense_task, seed=3, batch_size=8)
        result = tuner.tune(n_trial=16, early_stopping=None, on_event=[obs])
        assert obs.metrics is None and obs.trace is None
        assert obs.summary().num_measurements == result.num_measurements


class TestCrashResumeIdentity:
    @pytest.mark.parametrize("arm", sorted(ARM_KWARGS))
    @pytest.mark.parametrize("crash_batches", [1, 2])
    def test_summary_and_skeletons_identical(
        self, tmp_path, dense_task, arm, crash_batches
    ):
        n_trial = 24
        baseline_obs = TuningObserver()
        baseline = make_tuner(arm, dense_task, seed=5, **ARM_KWARGS[arm])
        baseline.tune(
            n_trial=n_trial, early_stopping=None, on_event=[baseline_obs]
        )

        path = tmp_path / "run.ckpt"
        crashed_obs = TuningObserver()
        crashed = make_tuner(arm, dense_task, seed=5, **ARM_KWARGS[arm])
        _crash_after(
            crashed, crash_batches, path, n_trial, on_event=[crashed_obs]
        )

        resumed_obs = TuningObserver()
        resumed = make_tuner(arm, dense_task, seed=5, **ARM_KWARGS[arm])
        resumed.resume(path, on_event=[resumed_obs])

        assert (
            resumed_obs.summary().deterministic_dict()
            == baseline_obs.summary().deterministic_dict()
        )
        assert (
            resumed_obs.trace.span_skeletons()
            == baseline_obs.trace.span_skeletons()
        )
        assert resumed_obs.summary().resumed
        assert not baseline_obs.summary().resumed

    def test_observer_state_is_json_serializable(self, tmp_path, dense_task):
        obs = TuningObserver()
        tuner = make_tuner("bted", dense_task, seed=5, **ARM_KWARGS["bted"])
        _crash_after(tuner, 1, tmp_path / "c.ckpt", 24, on_event=[obs])
        state = json.loads(json.dumps(obs.state_dict()))
        fresh = TuningObserver()
        fresh.load_state_dict(state)
        assert (
            fresh.summary().deterministic_dict()
            == obs.summary().deterministic_dict()
        )
        assert fresh.trace.span_skeletons() == obs.trace.span_skeletons()


class TestCallbackResume:
    def test_legacy_count_seeded_from_measurements(
        self, tmp_path, dense_task
    ):
        class Legacy:
            """Count-keeping callback without the state protocol."""

            def __init__(self):
                self._count = 0

            def __call__(self, tuner, results):
                self._count += len(results)

        path = tmp_path / "run.ckpt"
        crashed = make_tuner("random", dense_task, seed=3, batch_size=8)
        _crash_after(crashed, 2, path, 32, callbacks=[Legacy()])

        fresh = Legacy()
        resumed = make_tuner("random", dense_task, seed=3, batch_size=8)
        result = resumed.resume(path, callbacks=[fresh])
        assert fresh._count == result.num_measurements

    def test_log_progress_resume_tail_matches_uninterrupted(
        self, tmp_path, dense_task, caplog
    ):
        interval, n_trial = 8, 32

        def lines():
            # (boundary, best GFLOPS) per emitted progress line; the
            # elapsed-seconds arg is wall clock and excluded
            return [
                (r.args[1], r.args[2])
                for r in caplog.records
                if r.name == "repro.core.callbacks"
            ]

        with caplog.at_level(logging.INFO, logger="repro.core.callbacks"):
            baseline = make_tuner("random", dense_task, seed=3, batch_size=8)
            baseline.tune(
                n_trial=n_trial,
                early_stopping=None,
                callbacks=[LogProgress(interval=interval)],
            )
            full = lines()
            assert [b for b, _ in full] == [8, 16, 24, 32]

            caplog.clear()
            path = tmp_path / "run.ckpt"
            crashed = make_tuner("random", dense_task, seed=3, batch_size=8)
            _crash_after(
                crashed, 2, path, n_trial,
                callbacks=[LogProgress(interval=interval)],
            )
            head = lines()
            assert [b for b, _ in head] == [8, 16]

            caplog.clear()
            resumed = make_tuner("random", dense_task, seed=3, batch_size=8)
            resumed.resume(path, callbacks=[LogProgress(interval=interval)])
            tail = lines()

        # the resumed callback continues exactly where the crashed run
        # stopped: no repeats, no resets, values identical to baseline
        assert tail == full[len(head):]


class TestRunSummary:
    def test_deterministic_dict_drops_wall_clock_and_resumed(self):
        s = RunSummary(task="t", wall_s=1.0, proposal_s=0.5, resumed=True)
        det = s.deterministic_dict()
        for key in ("wall_s", "proposal_s", "measure_s", "refit_s",
                    "resumed"):
            assert key not in det
        assert det["task"] == "t"

    def test_from_dict_filters_unknown_keys(self):
        s = RunSummary.from_dict({"task": "x", "not_a_field": 3})
        assert s.task == "x"

    def test_aggregate_sums_and_groups_by_arm(self):
        rows = [
            RunSummary(arm="bted", batches=2, best_gflops=5.0, wall_s=1.0),
            RunSummary(arm="bted", batches=3, best_gflops=7.0, wall_s=2.0),
            RunSummary(arm="random", batches=1, best_gflops=2.0,
                       early_stopped=True),
        ]
        agg = aggregate_summaries(rows)
        assert agg["runs"] == 3
        assert agg["batches"] == 6
        assert agg["best_gflops"] == 7.0
        assert agg["early_stopped"] == 1
        assert list(agg["by_arm"]) == ["bted", "random"]
        assert agg["by_arm"]["bted"]["runs"] == 2
        assert agg["by_arm"]["bted"]["wall_s"] == pytest.approx(3.0)

    def test_aggregate_summary_dir(self, tmp_path):
        write_summary_json(
            str(tmp_path / "cell-a.summary.json"),
            RunSummary(arm="bted", batches=2).to_dict(),
        )
        write_summary_json(
            str(tmp_path / "cell-b.summary.json"),
            {
                "model": "m", "arm": "bted", "trial": 0,
                "tasks": [RunSummary(arm="bted", batches=4).to_dict()],
            },
        )
        (tmp_path / "not-a-cell.json").write_text("{}")
        agg = aggregate_summary_dir(str(tmp_path))
        assert agg["cells"] == 2
        assert agg["runs"] == 2
        assert agg["batches"] == 6
        written = json.loads((tmp_path / "summary.json").read_text())
        assert written == agg


class TestRunObservation:
    def _observed_run(self, task, key, observation, seed=3):
        obs = observation.observer(key)
        tuner = make_tuner("random", task, seed=seed, batch_size=8)
        tuner.tune(n_trial=16, early_stopping=None, on_event=[obs])

    def test_merged_spans_rebase_ids_and_tag_tasks(self, dense_task):
        observation = RunObservation()
        self._observed_run(dense_task, "task-001", observation)
        self._observed_run(dense_task, "task-000", observation, seed=4)
        assert observation.keys() == ["task-000", "task-001"]
        spans = observation.merged_spans()
        assert [s["span_id"] for s in spans] == list(range(len(spans)))
        first_len = len(observation.observer("task-000").trace.spans)
        assert spans[0]["attrs"]["task_key"] == "task-000"
        assert spans[first_len]["attrs"]["task_key"] == "task-001"
        # parents stay within each task's rebased id range
        for span in spans[first_len:]:
            if span["parent_id"] is not None:
                assert span["parent_id"] >= first_len

    def test_exporters_write_files(self, tmp_path, dense_task):
        observation = RunObservation()
        self._observed_run(dense_task, "task-000", observation)
        metrics = tmp_path / "metrics.prom"
        trace = tmp_path / "trace.jsonl"
        summary = tmp_path / "summary.json"
        observation.write_metrics(str(metrics))
        observation.write_trace_jsonl(str(trace))
        observation.write_summary(str(summary))
        assert "repro_measurements_total 16" in metrics.read_text()
        assert all(
            json.loads(line)
            for line in trace.read_text().splitlines()
        )
        payload = json.loads(summary.read_text())
        assert payload["runs"] == 1
        assert payload["tasks"][0]["num_measurements"] == 16


class TestEngineSummaries:
    def test_fig5_summary_dir_aggregates_cells(self, tmp_path):
        settings = ExperimentSettings(
            init_size=16, n_trial=32, early_stopping=None, batch_size=16,
            batch_candidates=64, num_batches=2, num_runs=100, num_trials=1,
            env_seed=7,
        )
        out = tmp_path / "summaries"
        run_fig5(
            arms=("random",), settings=settings, num_trials=1, max_tasks=1,
            summary_dir=str(out),
        )
        cells = sorted(p.name for p in out.glob("cell-*.summary.json"))
        assert len(cells) == 1
        agg = json.loads((out / "summary.json").read_text())
        assert agg["cells"] == 1
        assert agg["runs"] == 1
        assert agg["num_measurements"] == 32
