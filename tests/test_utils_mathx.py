"""Tests for repro.utils.mathx: factorization and distance helpers."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.utils.mathx import (
    all_factorizations,
    ceil_div,
    clamp,
    factor_pairs,
    factorize,
    is_power_of_two,
    next_power_of_two,
    pairwise_sq_dists,
    round_up,
)


class TestCeilDiv:
    @pytest.mark.parametrize(
        "a,b,expected", [(0, 3, 0), (1, 3, 1), (3, 3, 1), (4, 3, 2), (9, 3, 3)]
    )
    def test_values(self, a, b, expected):
        assert ceil_div(a, b) == expected

    def test_rejects_nonpositive_divisor(self):
        with pytest.raises(ValueError):
            ceil_div(5, 0)

    @given(st.integers(0, 10**6), st.integers(1, 10**4))
    def test_property(self, a, b):
        q = ceil_div(a, b)
        assert q * b >= a
        assert (q - 1) * b < a or q == 0


class TestRoundUpClamp:
    def test_round_up(self):
        assert round_up(5, 4) == 8
        assert round_up(8, 4) == 8

    def test_clamp(self):
        assert clamp(5, 0, 3) == 3
        assert clamp(-1, 0, 3) == 0
        assert clamp(2, 0, 3) == 2

    def test_clamp_empty_interval(self):
        with pytest.raises(ValueError):
            clamp(1, 3, 0)


class TestPowersOfTwo:
    def test_is_power_of_two(self):
        assert is_power_of_two(1)
        assert is_power_of_two(64)
        assert not is_power_of_two(0)
        assert not is_power_of_two(6)
        assert not is_power_of_two(-4)

    def test_next_power_of_two(self):
        assert next_power_of_two(1) == 1
        assert next_power_of_two(5) == 8
        assert next_power_of_two(64) == 64

    def test_next_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            next_power_of_two(0)


class TestFactorize:
    def test_twelve(self):
        assert factorize(12) == (1, 2, 3, 4, 6, 12)

    def test_prime(self):
        assert factorize(13) == (1, 13)

    def test_one(self):
        assert factorize(1) == (1,)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            factorize(0)

    @given(st.integers(1, 2000))
    def test_all_divide(self, n):
        for d in factorize(n):
            assert n % d == 0

    def test_factor_pairs(self):
        assert factor_pairs(4) == [(1, 4), (2, 2), (4, 1)]
        for a, b in factor_pairs(36):
            assert a * b == 36


class TestAllFactorizations:
    def test_small(self):
        assert all_factorizations(4, 2) == ((1, 4), (2, 2), (4, 1))

    def test_single_part(self):
        assert all_factorizations(6, 1) == ((6,),)

    def test_rejects_zero_parts(self):
        with pytest.raises(ValueError):
            all_factorizations(4, 0)

    @given(st.integers(1, 64), st.integers(1, 4))
    def test_products_and_uniqueness(self, n, parts):
        combos = all_factorizations(n, parts)
        assert len(set(combos)) == len(combos)
        for combo in combos:
            assert len(combo) == parts
            product = 1
            for f in combo:
                product *= f
            assert product == n

    def test_count_power_of_two(self):
        # number of ordered factorizations of 2^a into k parts is C(a+k-1, k-1)
        from math import comb

        assert len(all_factorizations(2**5, 4)) == comb(5 + 3, 3)


class TestPairwiseSqDists:
    def test_simple(self):
        a = np.array([[0.0, 0.0], [1.0, 0.0]])
        d = pairwise_sq_dists(a, a)
        assert d.shape == (2, 2)
        assert d[0, 1] == pytest.approx(1.0)
        assert d[0, 0] == pytest.approx(0.0)

    def test_non_negative_despite_cancellation(self):
        a = np.full((4, 3), 1e8)
        d = pairwise_sq_dists(a, a)
        assert (d >= 0).all()

    def test_dimension_mismatch(self):
        with pytest.raises(ValueError):
            pairwise_sq_dists(np.ones((2, 3)), np.ones((2, 4)))

    def test_requires_2d(self):
        with pytest.raises(ValueError):
            pairwise_sq_dists(np.ones(3), np.ones((2, 3)))

    @given(
        st.integers(1, 8),
        st.integers(1, 8),
        st.integers(1, 5),
        st.integers(0, 10**6),
    )
    def test_matches_naive(self, n, m, d, seed):
        rng = np.random.default_rng(seed)
        a = rng.normal(size=(n, d))
        b = rng.normal(size=(m, d))
        fast = pairwise_sq_dists(a, b)
        naive = ((a[:, None, :] - b[None, :, :]) ** 2).sum(axis=2)
        assert np.allclose(fast, naive, atol=1e-8)
