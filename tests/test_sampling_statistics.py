"""Statistical checks on the random samplers (uniformity, independence)."""

import numpy as np
from scipy import stats

from repro.space.knobs import OtherKnob
from repro.space.space import ConfigSpace


def small_space(size=60) -> ConfigSpace:
    space = ConfigSpace("stat")
    space.add_knob(OtherKnob("a", list(range(size))))
    return space


class TestSampleUniformity:
    def test_chi_square_uniform_over_indices(self):
        """Pooled samples across seeds must be uniform over the space."""
        space = small_space(60)
        counts = np.zeros(len(space))
        for seed in range(200):
            for idx in space.sample(6, seed=seed):
                counts[int(idx)] += 1
        _, p_value = stats.chisquare(counts)
        assert p_value > 0.001  # not detectably non-uniform

    def test_knob_marginals_uniform_in_product_space(self):
        space = ConfigSpace("prod")
        space.add_knob(OtherKnob("a", list(range(8))))
        space.add_knob(OtherKnob("b", list(range(8))))
        indices = space.sample(48, seed=0)
        pooled = []
        for seed in range(100):
            pooled.extend(space.sample(10, seed=seed).tolist())
        digits = space.decode_batch(np.asarray(pooled))
        for k in range(2):
            counts = np.bincount(digits[:, k], minlength=8)
            _, p_value = stats.chisquare(counts)
            assert p_value > 0.001

    def test_random_walks_reach_everywhere(self):
        """The SA mutation kernel must be irreducible: repeated walks
        starting anywhere visit the whole (small) space."""
        space = small_space(12)
        visited = set()
        position = 0
        for step in range(600):
            position = space.random_walk(position, seed=step)
            visited.add(position)
        assert visited == set(range(len(space)))


class TestBootstrapResampleStatistics:
    def test_unique_fraction_matches_theory(self):
        """Sec. II-C: a bootstrap resample contains ~63.2% unique items."""
        rng = np.random.default_rng(0)
        n = 500
        fractions = []
        for _ in range(50):
            rows = rng.integers(0, n, size=n)
            fractions.append(len(np.unique(rows)) / n)
        np.testing.assert_allclose(
            np.mean(fractions), 1 - np.exp(-1), atol=0.01
        )
