"""Fault-injection model, retry policy, and the fault executor."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.hardware.executor import (
    FaultInjectingExecutor,
    SerialExecutor,
    build_executor,
)
from repro.hardware.faults import (
    MAX_CONSECUTIVE_FAULTS,
    FaultKind,
    FaultModel,
    FaultOutcome,
    RetryPolicy,
)
from repro.hardware.measure import Measurer, MeasureErrorKind

from tests.strategies import fault_models

COMMON = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


class TestFaultModel:
    def test_schedule_is_pure_in_seed_and_ordinal(self):
        model = FaultModel(rate=0.4, seed=11)
        clone = FaultModel(rate=0.4, seed=11)
        for ordinal in range(200):
            assert model.faults_at(ordinal) == clone.faults_at(ordinal)
        # querying out of order changes nothing
        assert model.faults_at(3) == clone.faults_at(3)

    def test_zero_rate_never_faults(self):
        model = FaultModel(rate=0.0, seed=3)
        assert all(model.faults_at(k) == () for k in range(500))

    def test_rate_controls_fault_frequency(self):
        low = FaultModel(rate=0.05, seed=1)
        high = FaultModel(rate=0.5, seed=1)
        n = 2000
        low_hits = sum(bool(low.faults_at(k)) for k in range(n))
        high_hits = sum(bool(high.faults_at(k)) for k in range(n))
        assert low_hits < high_hits
        assert 0.01 < low_hits / n < 0.12
        assert 0.4 < high_hits / n < 0.6

    def test_kinds_restricted_to_model_kinds(self):
        model = FaultModel(rate=0.6, seed=9, kinds=(FaultKind.TIMEOUT,))
        kinds = {
            kind for k in range(300) for kind in model.faults_at(k)
        }
        assert kinds == {FaultKind.TIMEOUT}

    def test_consecutive_faults_capped(self):
        model = FaultModel(rate=0.95, seed=0)
        assert all(
            len(model.faults_at(k)) <= MAX_CONSECUTIVE_FAULTS
            for k in range(100)
        )

    def test_rejects_invalid_parameters(self):
        with pytest.raises(ValueError):
            FaultModel(rate=1.0)
        with pytest.raises(ValueError):
            FaultModel(rate=-0.1)
        with pytest.raises(ValueError):
            FaultModel(rate=0.1, kinds=())

    @given(fault_models(), st.integers(0, 10_000))
    @COMMON
    def test_purity_property(self, model, ordinal):
        assert model.faults_at(ordinal) == model.faults_at(ordinal)


class TestRetryPolicy:
    def test_backoff_grows_and_caps(self):
        policy = RetryPolicy(
            max_retries=6, backoff_s=1.0, multiplier=2.0, max_backoff_s=5.0
        )
        assert policy.backoff_for(0) == 1.0
        assert policy.backoff_for(1) == 2.0
        assert policy.backoff_for(2) == 4.0
        assert policy.backoff_for(3) == 5.0  # capped
        assert policy.total_backoff(3) == 7.0

    def test_rejects_invalid_parameters(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_retries=-1)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_s=-1.0)
        with pytest.raises(ValueError):
            RetryPolicy(multiplier=0.5)

    def test_outcome_attempt_accounting(self):
        recovered = FaultOutcome(
            ordinal=0, config_index=1,
            faults=(FaultKind.TIMEOUT, FaultKind.TIMEOUT),
        )
        assert recovered.attempts == 3  # two faults + the surviving retry
        dead = FaultOutcome(
            ordinal=0, config_index=1,
            faults=(FaultKind.TIMEOUT,), exhausted=True,
        )
        assert dead.attempts == 1


class TestFaultInjectingExecutor:
    def _executor(self, task, rate, max_retries, seed=5):
        measurer = Measurer(task, seed=0)
        return FaultInjectingExecutor(
            SerialExecutor(measurer),
            faults=FaultModel(rate=rate, seed=seed),
            retry=RetryPolicy(max_retries=max_retries),
        )

    def test_recovered_measurements_keep_their_result(self, dense_task):
        batch = list(range(24))
        clean = SerialExecutor(Measurer(dense_task, seed=0)).measure_batch(
            batch
        )
        # retries large enough that every fault run recovers
        exe = self._executor(dense_task, rate=0.5, max_retries=64)
        faulted = exe.measure_batch(batch)
        assert [r.gflops for r in faulted] == [r.gflops for r in clean]
        assert exe.failures == 0
        assert exe.retries > 0

    def test_exhausted_retries_degrade_to_error_records(self, dense_task):
        exe = self._executor(dense_task, rate=0.6, max_retries=0)
        results = exe.measure_batch(list(range(40)))
        failed = [r for r in results if not r.ok]
        assert failed, "rate 0.6 with no retries must fail something"
        for result in failed:
            assert result.gflops == 0.0
            assert result.mean_time_s == float("inf")
            assert result.error_kind in (
                MeasureErrorKind.BUILD_ERROR,
                MeasureErrorKind.TIMEOUT,
                MeasureErrorKind.DEVICE_LOST,
            )
            assert "injected" in result.error_msg
        assert exe.failures == len(failed)

    def test_outcomes_match_schedule_and_drain_once(self, dense_task):
        model = FaultModel(rate=0.5, seed=5)
        exe = self._executor(dense_task, rate=0.5, max_retries=2)
        exe.measure_batch(list(range(30)))
        outcomes = exe.drain_fault_outcomes()
        assert exe.drain_fault_outcomes() == []
        expected = {
            k: model.faults_at(k)
            for k in range(30)
            if model.faults_at(k)
        }
        assert {o.ordinal for o in outcomes} == set(expected)
        for outcome in outcomes:
            plan = expected[outcome.ordinal]
            assert outcome.exhausted == (len(plan) > 2)
            assert outcome.faults == plan[: min(len(plan), 2)
                                          + (1 if len(plan) > 2 else 0)]

    def test_backoff_is_accounted_not_slept_by_default(self, dense_task):
        slept = []
        measurer = Measurer(dense_task, seed=0)
        exe = FaultInjectingExecutor(
            SerialExecutor(measurer),
            faults=FaultModel(rate=0.5, seed=5),
            retry=RetryPolicy(max_retries=3, backoff_s=0.25),
            sleep=slept.append,
        )
        exe.measure_batch(list(range(30)))
        assert exe.total_backoff_s > 0
        assert sum(slept) == pytest.approx(exe.total_backoff_s)

    def test_parallel_equals_serial_under_faults(self, dense_task):
        batch = list(range(20))
        serial = build_executor(
            Measurer(dense_task, seed=0), "serial",
            faults=FaultModel(rate=0.4, seed=2),
            retry=RetryPolicy(max_retries=1),
        )
        parallel = build_executor(
            Measurer(dense_task, seed=0), "parallel", jobs=2,
            faults=FaultModel(rate=0.4, seed=2),
            retry=RetryPolicy(max_retries=1),
        )
        try:
            a = serial.measure_batch(batch)
            b = parallel.measure_batch(batch)
        finally:
            parallel.close()
        assert [(r.config_index, r.gflops, r.ok) for r in a] == [
            (r.config_index, r.gflops, r.ok) for r in b
        ]

    def test_sync_ordinal_replays_remaining_schedule(self, dense_task):
        batch = list(range(16))
        reference = self._executor(dense_task, rate=0.5, max_retries=0)
        full = [
            r.ok for r in reference.measure_batch(batch + list(range(16, 32)))
        ]
        resumed = self._executor(dense_task, rate=0.5, max_retries=0)
        resumed.measure_batch(batch)
        resumed.sync_ordinal(16)
        tail = [r.ok for r in resumed.measure_batch(list(range(16, 32)))]
        assert tail == full[16:]

    def test_build_executor_wraps_faults_outermost(self, dense_task):
        exe = build_executor(
            Measurer(dense_task, seed=0), "serial",
            faults=FaultModel(rate=0.2, seed=0),
        )
        assert isinstance(exe, FaultInjectingExecutor)

    @given(fault_models(max_rate=0.6), st.integers(0, 4))
    @settings(
        max_examples=15,
        deadline=None,
        suppress_health_check=[
            HealthCheck.too_slow,
            HealthCheck.function_scoped_fixture,
        ],
    )
    def test_faulted_stream_is_deterministic(
        self, dense_task, model, max_retries
    ):
        batch = list(range(12))

        def run():
            measurer = Measurer(dense_task, seed=0)
            exe = FaultInjectingExecutor(
                SerialExecutor(measurer),
                faults=model,
                retry=RetryPolicy(max_retries=max_retries),
            )
            return [
                (r.config_index, r.gflops, r.ok)
                for r in exe.measure_batch(batch)
            ]

        assert run() == run()
