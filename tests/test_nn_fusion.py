"""Tests for repro.nn.fusion: the graph-level fusion pass."""

import pytest

from repro.nn.fusion import fuse_graph, tunable_workloads
from repro.nn.graph import GraphBuilder


def conv_bn_relu_graph():
    b = GraphBuilder("cbr")
    b.input((1, 3, 8, 8))
    b.conv2d("c1", 8, kernel=(3, 3), padding=(1, 1))
    b.batch_norm("bn1")
    b.relu("r1")
    return b.graph


class TestBasicFusion:
    def test_conv_bn_relu_fuses_into_one_kernel(self):
        groups = fuse_graph(conv_bn_relu_graph())
        ops = [g.ops for g in groups]
        assert ("conv2d", "batch_norm", "relu") in ops

    def test_every_node_in_exactly_one_group(self):
        graph = conv_bn_relu_graph()
        groups = fuse_graph(graph)
        all_ids = sorted(i for g in groups for i in g.node_ids)
        assert all_ids == list(range(len(graph)))

    def test_pooling_breaks_fusion(self):
        b = GraphBuilder()
        b.input((1, 3, 8, 8))
        b.conv2d("c", 8, padding=(1, 1))
        b.pool2d("p")
        b.relu("r")
        groups = fuse_graph(b.graph)
        pool_group = next(g for g in groups if "max_pool2d" in g.ops)
        # relu cannot fuse into the pool group (no anchor there)
        assert pool_group.ops == ("max_pool2d",)

    def test_input_is_its_own_group(self):
        groups = fuse_graph(conv_bn_relu_graph())
        assert groups[0].ops == ("input",)
        assert not groups[0].is_tunable

    def test_flops_accumulate(self):
        graph = conv_bn_relu_graph()
        groups = fuse_graph(graph)
        assert sum(g.flops for g in groups) == graph.total_flops()


class TestMultiConsumer:
    def test_fanout_blocks_fusion(self):
        # conv output feeds two relus: neither can fuse (tensor must
        # materialize)
        b = GraphBuilder()
        b.input((1, 3, 8, 8))
        conv = b.conv2d("c", 8, padding=(1, 1))
        b.relu("r1", source=conv)
        b.relu("r2", source=conv)
        groups = fuse_graph(b.graph)
        conv_group = next(g for g in groups if "conv2d" in g.ops)
        assert conv_group.ops == ("conv2d",)

    def test_residual_add_fuses_into_main_branch(self):
        b = GraphBuilder()
        src = b.input((1, 8, 8, 8))
        main = b.conv2d("c1", 8, padding=(1, 1), source=src)
        b.add("sum", main, src)
        groups = fuse_graph(b.graph)
        conv_group = next(g for g in groups if "conv2d" in g.ops)
        assert "add" in conv_group.ops


class TestWorkloads:
    def test_tunable_groups_have_workloads(self):
        groups = fuse_graph(conv_bn_relu_graph())
        tunable = [g for g in groups if g.is_tunable]
        assert len(tunable) == 1
        assert tunable[0].workload.kind == "conv2d"

    def test_dedup(self):
        b = GraphBuilder()
        b.input((1, 8, 8, 8))
        b.conv2d("c1", 8, padding=(1, 1))
        b.conv2d("c2", 8, padding=(1, 1))  # identical workload
        assert len(tunable_workloads(b.graph)) == 1

    def test_different_shapes_not_deduped(self):
        b = GraphBuilder()
        b.input((1, 8, 8, 8))
        b.conv2d("c1", 8, padding=(1, 1))
        b.conv2d("c2", 16, padding=(1, 1))
        assert len(tunable_workloads(b.graph)) == 2

    def test_repr(self):
        groups = fuse_graph(conv_bn_relu_graph())
        assert "FusedOp" in repr(groups[1])
