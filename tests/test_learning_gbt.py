"""Tests for repro.learning.gbt."""

import numpy as np
import pytest

from repro.learning.gbt import GradientBoostedTrees
from repro.learning.metrics import rank_accuracy, rmse


def friedman_like(n=400, seed=0):
    """A smooth nonlinear target the ensemble should fit well."""
    rng = np.random.default_rng(seed)
    X = rng.uniform(0, 1, size=(n, 5))
    y = (
        10 * np.sin(np.pi * X[:, 0] * X[:, 1])
        + 20 * (X[:, 2] - 0.5) ** 2
        + 10 * X[:, 3]
    )
    return X, y


class TestFitQuality:
    @pytest.mark.parametrize("method", ["hist", "exact"])
    def test_beats_constant_predictor(self, method):
        X, y = friedman_like()
        model = GradientBoostedTrees(
            n_estimators=50, max_depth=4, method=method, seed=0
        ).fit(X, y)
        pred = model.predict(X)
        assert rmse(y, pred) < 0.3 * y.std()

    def test_ranking_quality(self):
        X, y = friedman_like(300, seed=1)
        model = GradientBoostedTrees(n_estimators=40, seed=0).fit(X, y)
        assert rank_accuracy(y, model.predict(X)) > 0.9

    def test_generalizes(self):
        X, y = friedman_like(500, seed=2)
        Xt, yt = friedman_like(200, seed=3)
        model = GradientBoostedTrees(n_estimators=60, seed=0).fit(X, y)
        assert rmse(yt, model.predict(Xt)) < 0.5 * yt.std()

    def test_single_sample(self):
        model = GradientBoostedTrees(n_estimators=3, seed=0)
        model.fit(np.array([[1.0, 2.0]]), np.array([5.0]))
        assert model.predict(np.array([[1.0, 2.0]]))[0] == pytest.approx(5.0)

    def test_constant_target(self):
        X = np.random.default_rng(0).normal(size=(50, 3))
        model = GradientBoostedTrees(n_estimators=5, seed=0).fit(
            X, np.full(50, 3.0)
        )
        assert model.predict(X) == pytest.approx(np.full(50, 3.0))


class TestEarlyStopping:
    def test_stops_before_budget_on_noise(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(200, 4))
        y = rng.normal(size=200)  # pure noise: validation error plateaus
        model = GradientBoostedTrees(
            n_estimators=200, early_stopping_rounds=5, seed=0
        ).fit(X, y)
        assert model.n_trees < 200

    def test_no_validation_for_tiny_data(self):
        X = np.random.default_rng(0).normal(size=(8, 2))
        y = np.arange(8.0)
        model = GradientBoostedTrees(
            n_estimators=10, early_stopping_rounds=3, seed=0
        ).fit(X, y)
        assert model.n_trees == 10


class TestDeterminism:
    def test_same_seed_same_model(self):
        X, y = friedman_like(100)
        a = GradientBoostedTrees(n_estimators=20, seed=9).fit(X, y).predict(X)
        b = GradientBoostedTrees(n_estimators=20, seed=9).fit(X, y).predict(X)
        assert np.allclose(a, b)

    def test_different_seeds_differ(self):
        X, y = friedman_like(100)
        a = GradientBoostedTrees(n_estimators=20, subsample=0.7,
                                 seed=1).fit(X, y).predict(X)
        b = GradientBoostedTrees(n_estimators=20, subsample=0.7,
                                 seed=2).fit(X, y).predict(X)
        assert not np.allclose(a, b)


class TestValidation:
    def test_bad_hyperparams(self):
        with pytest.raises(ValueError):
            GradientBoostedTrees(n_estimators=0)
        with pytest.raises(ValueError):
            GradientBoostedTrees(learning_rate=0)
        with pytest.raises(ValueError):
            GradientBoostedTrees(subsample=1.5)
        with pytest.raises(ValueError):
            GradientBoostedTrees(method="dart")
        with pytest.raises(ValueError):
            GradientBoostedTrees(max_features=0.5)  # needs exact

    def test_max_features_exact_ok(self):
        X, y = friedman_like(60)
        model = GradientBoostedTrees(
            n_estimators=5, method="exact", max_features=0.5, seed=0
        ).fit(X, y)
        assert model.n_trees == 5

    def test_shape_errors(self):
        model = GradientBoostedTrees()
        with pytest.raises(ValueError):
            model.fit(np.ones((5, 2)), np.ones(4))
        with pytest.raises(ValueError):
            model.fit(np.empty((0, 2)), np.empty(0))
        with pytest.raises(RuntimeError):
            GradientBoostedTrees().predict(np.ones((2, 2)))

    def test_sample_weight_mismatch(self):
        with pytest.raises(ValueError):
            GradientBoostedTrees().fit(
                np.ones((5, 2)), np.ones(5), sample_weight=np.ones(4)
            )

    def test_weights_downweight_outliers(self):
        rng = np.random.default_rng(0)
        X = rng.uniform(0, 1, size=(100, 2))
        y = X[:, 0].copy()
        y[:10] += 100.0  # corrupted rows
        w = np.ones(100)
        w[:10] = 1e-6
        model = GradientBoostedTrees(n_estimators=30, seed=0).fit(
            X, y, sample_weight=w
        )
        clean_rmse = rmse(X[10:, 0], model.predict(X[10:]))
        assert clean_rmse < 1.0
