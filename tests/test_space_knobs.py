"""Tests for repro.space.knobs."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.space.knobs import BoolKnob, OtherKnob, ReorderKnob, SplitKnob


class TestSplitKnob:
    def test_candidate_count(self):
        knob = SplitKnob("tile", extent=4, num_outputs=2)
        assert len(knob) == 3
        assert knob.value(0) == (1, 4)

    def test_products(self):
        knob = SplitKnob("tile", extent=12, num_outputs=3)
        for i in range(len(knob)):
            product = 1
            for f in knob.value(i):
                product *= f
            assert product == 12

    def test_features_are_log2(self):
        knob = SplitKnob("tile", extent=8, num_outputs=2)
        i = next(
            j for j in range(len(knob)) if knob.value(j) == (2, 4)
        )
        assert np.allclose(knob.features(i), [1.0, 2.0])

    def test_feature_dim(self):
        assert SplitKnob("t", 16, 4).feature_dim == 4

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            SplitKnob("t", 0, 2)
        with pytest.raises(ValueError):
            SplitKnob("t", 4, 1)
        with pytest.raises(ValueError):
            SplitKnob("", 4, 2)

    def test_index_bounds(self):
        knob = SplitKnob("t", 4, 2)
        with pytest.raises(IndexError):
            knob.value(len(knob))
        with pytest.raises(IndexError):
            knob.features(-1)

    @given(st.integers(1, 100), st.integers(2, 4))
    def test_all_candidates_distinct(self, extent, parts):
        knob = SplitKnob("t", extent, parts)
        values = [knob.value(i) for i in range(len(knob))]
        assert len(set(values)) == len(values)


class TestOtherKnob:
    def test_values(self):
        knob = OtherKnob("unroll", [0, 512, 1500])
        assert len(knob) == 3
        assert knob.value(1) == 512

    def test_features_monotone_in_value(self):
        knob = OtherKnob("unroll", [0, 512, 1500])
        feats = [knob.features(i)[0] for i in range(3)]
        assert feats == sorted(feats)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            OtherKnob("x", [])

    def test_feature_dim(self):
        assert OtherKnob("x", [1, 2]).feature_dim == 1


class TestBoolKnob:
    def test_two_candidates(self):
        knob = BoolKnob("flag")
        assert len(knob) == 2
        assert knob.value(0) == 0
        assert knob.value(1) == 1


class TestReorderKnob:
    def test_candidates_are_permutations(self):
        knob = ReorderKnob("order", ["i", "j", "k"])
        assert len(knob) == 6
        values = {knob.value(i) for i in range(len(knob))}
        assert ("i", "j", "k") in values
        assert all(sorted(v) == ["i", "j", "k"] for v in values)

    def test_cap(self):
        knob = ReorderKnob("order", ["a", "b", "c", "d"], max_candidates=10)
        assert len(knob) == 10

    def test_features_in_unit_range(self):
        knob = ReorderKnob("order", ["i", "j", "k"])
        for i in range(len(knob)):
            feats = knob.features(i)
            assert feats.min() >= 0.0
            assert feats.max() <= 1.0

    def test_identity_features(self):
        knob = ReorderKnob("order", ["i", "j"])
        i = next(
            j for j in range(len(knob)) if knob.value(j) == ("i", "j")
        )
        assert np.allclose(knob.features(i), [0.0, 1.0])

    def test_rejects_duplicates(self):
        with pytest.raises(ValueError):
            ReorderKnob("order", ["i", "i"])

    def test_rejects_single_axis(self):
        with pytest.raises(ValueError):
            ReorderKnob("order", ["i"])
