"""Tests for repro.core.bao (Algorithm 4)."""

import numpy as np
import pytest

from repro.core.bao import BaoOptimizer, BaoSettings


class TestBaoSettings:
    def test_paper_defaults(self):
        s = BaoSettings()
        assert s.eta == 0.05
        assert s.gamma == 2
        assert s.tau == 1.5
        assert s.radius == 3.0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"eta": -0.1},
            {"gamma": 0},
            {"tau": 1.0},
            {"radius": 0.0},
            {"neighborhood_size": 0},
            {"center": "middle"},
            {"metric": "cosine"},
            {"refit_interval": 0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            BaoSettings(**kwargs)


class TestRadiusAdaptation:
    def make(self, task, **kwargs):
        settings = BaoSettings(**kwargs)
        return BaoOptimizer(task.space, settings=settings, seed=0)

    def test_base_radius_before_history(self, small_task):
        bao = self.make(small_task)
        assert bao.current_radius() == 3.0
        bao.observe(10.0)
        assert bao.current_radius() == 3.0

    def test_widens_on_stagnation(self, small_task):
        bao = self.make(small_task)
        bao.observe(100.0)
        bao.observe(100.0)  # 0% improvement < eta
        assert bao.current_radius() == pytest.approx(4.5)

    def test_stays_base_on_improvement(self, small_task):
        bao = self.make(small_task)
        bao.observe(100.0)
        bao.observe(120.0)  # 16.7% improvement >= eta
        assert bao.current_radius() == pytest.approx(3.0)

    def test_threshold_boundary(self, small_task):
        bao = self.make(small_task, eta=0.05)
        bao.observe(95.0)
        bao.observe(100.0)  # exactly 5% improvement -> no widening
        assert bao.current_radius() == pytest.approx(3.0)

    def test_one_step_widening_resets(self, small_task):
        """The paper's rule is a one-step widening, not compounding."""
        bao = self.make(small_task)
        for value in (100.0, 100.0, 100.0, 100.0):
            bao.observe(value)
        assert bao.current_radius() == pytest.approx(4.5)

    def test_compound_mode(self, small_task):
        bao = self.make(small_task, compound_radius=True)
        bao.observe(100.0)
        bao.observe(100.0)
        assert bao.current_radius() == pytest.approx(4.5)
        bao.observe(100.0)
        assert bao.current_radius() == pytest.approx(6.75)

    def test_zero_best_is_safe(self, small_task):
        bao = self.make(small_task)
        bao.observe(0.0)
        bao.observe(0.0)
        assert bao.current_radius() == pytest.approx(4.5)


class TestPropose:
    def _measured_state(self, task, n=48, seed=0):
        indices = task.space.sample(n, seed=seed)
        feats = task.space.feature_matrix(indices)
        scores = np.array([task.true_gflops(int(i)) for i in indices])
        best = int(indices[int(np.argmax(scores))])
        return indices, feats, scores, best

    def test_proposes_valid_index(self, small_task):
        indices, feats, scores, best = self._measured_state(small_task)
        bao = BaoOptimizer(small_task.space, seed=0)
        chosen = bao.propose(feats, scores, best_index=best)
        assert 0 <= chosen < len(small_task.space)

    def test_avoids_visited_when_possible(self, small_task):
        indices, feats, scores, best = self._measured_state(small_task)
        bao = BaoOptimizer(small_task.space, seed=0)
        visited = set(int(i) for i in indices)
        chosen = bao.propose(feats, scores, best_index=best, visited=visited)
        assert chosen not in visited

    def test_requires_measurements(self, small_task):
        bao = BaoOptimizer(small_task.space, seed=0)
        with pytest.raises(ValueError):
            bao.propose(np.empty((0, 4)), np.empty(0), best_index=0)

    def test_deterministic(self, small_task):
        indices, feats, scores, best = self._measured_state(small_task)
        a = BaoOptimizer(small_task.space, seed=4).propose(
            feats, scores, best_index=best
        )
        b = BaoOptimizer(small_task.space, seed=4).propose(
            feats, scores, best_index=best
        )
        assert a == b

    def test_proposal_is_near_incumbent(self, small_task):
        """With the feature metric, the proposal must lie within the
        (widened) radius of the incumbent in feature space, unless it is
        a lattice step."""
        indices, feats, scores, best = self._measured_state(small_task)
        settings = BaoSettings(neighborhood_size=128)
        bao = BaoOptimizer(small_task.space, settings=settings, seed=1)
        chosen = bao.propose(feats, scores, best_index=best)
        space = small_task.space
        dist = float(
            np.linalg.norm(space.features_of(chosen) - space.features_of(best))
        )
        # one lattice step can move a feature by ~log2(extent); bound loosely
        assert dist <= max(settings.radius * settings.tau, 8.0)

    def test_refit_interval_reuses_ensemble(self, small_task):
        indices, feats, scores, best = self._measured_state(small_task)
        settings = BaoSettings(refit_interval=5)
        bao = BaoOptimizer(small_task.space, settings=settings, seed=2)
        bao.propose(feats, scores, best_index=best)
        fitted_first = bao._ensemble._models
        bao.propose(feats, scores, best_index=best)
        assert bao._ensemble._models is fitted_first  # not refit yet
