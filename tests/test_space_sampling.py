"""Tests for repro.space.sampling (k-center adaptive pruning)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.space.sampling import k_center_prune, min_sq_dists


class TestMinSqDists:
    def test_matches_naive(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(12, 5))
        Y = rng.normal(size=(7, 5))
        naive = ((X[:, None, :] - Y[None, :, :]) ** 2).sum(axis=2).min(axis=1)
        assert np.allclose(min_sq_dists(X, Y), naive)

    def test_zero_for_coincident_points(self):
        X = np.ones((3, 4))
        assert (min_sq_dists(X, X) == 0.0).all()


class TestKCenterPrune:
    def test_keeps_everything_when_budget_allows(self):
        feats = np.arange(12, dtype=float).reshape(6, 2)
        assert k_center_prune(feats, 6).tolist() == [0, 1, 2, 3, 4, 5]
        assert k_center_prune(feats, 10).tolist() == [0, 1, 2, 3, 4, 5]

    def test_first_row_always_survives(self):
        rng = np.random.default_rng(3)
        feats = rng.normal(size=(20, 4))
        for keep in (1, 3, 7):
            assert 0 in k_center_prune(feats, keep).tolist()

    def test_picks_the_farthest_point(self):
        # one outlier far from a tight cluster around row 0
        feats = np.zeros((5, 2))
        feats[1:4] += 0.01
        feats[4] = [100.0, 100.0]
        assert 4 in k_center_prune(feats, 2).tolist()

    def test_duplicates_pruned_before_distinct_points(self):
        feats = np.array(
            [[0.0, 0.0], [0.0, 0.0], [5.0, 0.0], [0.0, 0.0], [0.0, 7.0]]
        )
        kept = set(k_center_prune(feats, 3).tolist())
        assert kept == {0, 2, 4}

    def test_anchors_make_nearby_candidates_redundant(self):
        feats = np.array([[0.0, 0.0], [10.0, 0.0], [4.0, 0.0]])
        # without anchors, the far row wins the second slot
        assert set(k_center_prune(feats, 2).tolist()) == {0, 1}
        # a measured anchor at (10, 0) makes the far row redundant and
        # the midpoint becomes the most informative second pick
        anchors = np.array([[10.0, 0.0]])
        kept = k_center_prune(feats, 2, anchors=anchors).tolist()
        assert kept == [0, 2]

    def test_keep_must_be_positive(self):
        with pytest.raises(ValueError):
            k_center_prune(np.zeros((4, 2)), 0)

    def test_deterministic(self):
        rng = np.random.default_rng(11)
        feats = rng.normal(size=(30, 6))
        anchors = rng.normal(size=(9, 6))
        a = k_center_prune(feats, 10, anchors=anchors)
        b = k_center_prune(feats, 10, anchors=anchors)
        assert (a == b).all()

    @settings(max_examples=40, deadline=None)
    @given(
        st.integers(2, 25),
        st.integers(1, 25),
        st.integers(0, 6),
        st.integers(0, 2**32 - 1),
    )
    def test_property_valid_distinct_selection(self, n, keep, m, seed):
        rng = np.random.default_rng(seed)
        feats = rng.normal(size=(n, 3))
        anchors = rng.normal(size=(m, 3)) if m else None
        kept = k_center_prune(feats, keep, anchors=anchors)
        assert len(kept) == min(keep, n)
        assert len(set(kept.tolist())) == len(kept)
        assert all(0 <= i < n for i in kept.tolist())
        assert kept[0] == 0
