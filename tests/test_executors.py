"""Measurement executors: serial/parallel equivalence and caching.

The executor contract (``docs/EXECUTION.md``) promises that every
backend produces the measurement stream the serial path would have
produced, because noise is a pure function of the measurement ordinal.
These tests pin that promise, plus the cache semantics: hits return the
original result unchanged, keys keep different task environments apart,
and the store round-trips through disk.
"""

import pickle

import pytest

from repro.core import make_tuner
from repro.hardware.executor import (
    CachingExecutor,
    MeasureCache,
    MeasureExecutor,
    ParallelExecutor,
    SerialExecutor,
    build_executor,
)
from repro.hardware.measure import Measurer


def _signature(results):
    """Comparable projection of a list of MeasureResults."""
    return [
        (r.config_index, r.gflops, r.mean_time_s, r.error_kind, r.error_msg)
        for r in results
    ]


def _parallel_factory(measurer):
    """Executor factory used by determinism tests (module-level: picklable)."""
    return ParallelExecutor(measurer, jobs=2, chunk_size=4, min_parallel=1)


class TestSerialExecutor:
    def test_matches_direct_measurer(self, dense_task):
        direct = Measurer(dense_task, seed=3)
        wrapped = SerialExecutor(Measurer(dense_task, seed=3))
        batch = [0, 5, 9, 5]
        assert _signature(wrapped.measure_batch(batch)) == _signature(
            direct.measure_batch(batch)
        )
        assert wrapped.num_measurements == len(batch)

    def test_context_manager(self, dense_task):
        with SerialExecutor(Measurer(dense_task, seed=3)) as ex:
            assert ex.measure_batch([1])[0].config_index == 1


class TestParallelExecutor:
    def test_pool_path_identical_to_serial(self, dense_task):
        serial = SerialExecutor(Measurer(dense_task, seed=3))
        parallel = ParallelExecutor(
            Measurer(dense_task, seed=3), jobs=2, chunk_size=4, min_parallel=1
        )
        batches = [list(range(12)), [30, 31, 1, 2, 40, 41, 42, 43, 44]]
        try:
            for batch in batches:
                assert _signature(parallel.measure_batch(batch)) == _signature(
                    serial.measure_batch(batch)
                )
        finally:
            parallel.close()

    def test_inline_path_identical_to_serial(self, dense_task):
        serial = SerialExecutor(Measurer(dense_task, seed=3))
        parallel = ParallelExecutor(
            Measurer(dense_task, seed=3), jobs=2, min_parallel=64
        )
        batch = [4, 7, 7, 2]
        assert _signature(parallel.measure_batch(batch)) == _signature(
            serial.measure_batch(batch)
        )

    def test_ordinals_span_batches(self, dense_task):
        """The k-th submission is ordinal k even across many batches."""
        serial = SerialExecutor(Measurer(dense_task, seed=3))
        parallel = ParallelExecutor(
            Measurer(dense_task, seed=3), jobs=2, chunk_size=2, min_parallel=1
        )
        try:
            for batch in ([3, 1, 4], [1, 5], [9, 2, 6, 5, 3]):
                assert _signature(parallel.measure_batch(batch)) == _signature(
                    serial.measure_batch(batch)
                )
            assert parallel.num_measurements == serial.num_measurements == 10
            assert parallel.measurer.num_measurements == 10
        finally:
            parallel.close()

    def test_close_is_idempotent_and_restartable(self, dense_task):
        parallel = ParallelExecutor(
            Measurer(dense_task, seed=3), jobs=2, min_parallel=1
        )
        parallel.measure_batch([0, 1])
        parallel.close()
        parallel.close()
        assert len(parallel.measure_batch([2, 3])) == 2
        parallel.close()

    def test_rejects_bad_args(self, dense_task):
        measurer = Measurer(dense_task, seed=3)
        with pytest.raises(ValueError):
            ParallelExecutor(measurer, jobs=0)
        with pytest.raises(ValueError):
            ParallelExecutor(measurer, chunk_size=0)

    def test_empty_batch(self, dense_task):
        parallel = ParallelExecutor(Measurer(dense_task, seed=3), jobs=2)
        assert parallel.measure_batch([]) == []
        assert parallel.num_measurements == 0


class TestCachingExecutor:
    def test_hits_return_identical_results(self, dense_task):
        ex = CachingExecutor(SerialExecutor(Measurer(dense_task, seed=3)))
        first = ex.measure_batch([2, 8, 2, 13])
        # duplicates inside one batch are scanned before any measuring,
        # so both count as misses (matching serial re-measurement)
        assert ex.hits == 0 and ex.misses == 4
        again = ex.measure_batch([13, 8, 2])
        assert ex.hits == 3
        by_index = {r.config_index: r for r in first}
        assert _signature(again) == _signature(
            [by_index[13], by_index[8], by_index[2]]
        )

    def test_misses_keep_relative_order(self, dense_task):
        ex = CachingExecutor(SerialExecutor(Measurer(dense_task, seed=3)))
        ex.measure_batch([5])
        mixed = ex.measure_batch([1, 5, 2])
        assert [r.config_index for r in mixed] == [1, 5, 2]
        assert ex.misses == 3 and ex.hits == 1

    def test_keys_distinguish_tasks(self, small_task, dense_task):
        """Two environments share one cache without colliding."""
        cache = MeasureCache()
        ex_a = CachingExecutor(
            SerialExecutor(Measurer(small_task, seed=3)), cache=cache
        )
        ex_b = CachingExecutor(
            SerialExecutor(Measurer(dense_task, seed=3)), cache=cache
        )
        res_a = ex_a.measure_batch([0, 1])
        res_b = ex_b.measure_batch([0, 1])
        assert ex_b.hits == 0, "cross-task cache hit"
        assert len(cache) == 4
        assert _signature(res_a) != _signature(res_b)

    def test_disk_round_trip(self, dense_task, tmp_path):
        path = str(tmp_path / "measure.cache")
        cache = MeasureCache(path=path)
        ex = CachingExecutor(
            SerialExecutor(Measurer(dense_task, seed=3)), cache=cache
        )
        original = ex.measure_batch([4, 9, 11])
        ex.close()  # close() persists when the cache has a path

        reloaded = MeasureCache(path=path)
        assert len(reloaded) == 3
        ex2 = CachingExecutor(
            SerialExecutor(Measurer(dense_task, seed=3)), cache=reloaded
        )
        served = ex2.measure_batch([4, 9, 11])
        assert ex2.hits == 3 and ex2.misses == 0
        assert _signature(served) == _signature(original)

    def test_save_requires_a_path(self):
        with pytest.raises(ValueError):
            MeasureCache().save()

    def test_results_are_picklable(self, dense_task):
        ex = SerialExecutor(Measurer(dense_task, seed=3))
        results = ex.measure_batch([0, 1, 2])
        assert _signature(pickle.loads(pickle.dumps(results))) == _signature(
            results
        )


class TestBuildExecutor:
    def test_spec_resolution(self, dense_task):
        measurer = Measurer(dense_task, seed=3)
        assert isinstance(build_executor(measurer), SerialExecutor)
        assert isinstance(build_executor(measurer, "serial"), SerialExecutor)
        assert isinstance(
            build_executor(measurer, "parallel", jobs=2), ParallelExecutor
        )
        ready = SerialExecutor(measurer)
        assert build_executor(measurer, ready) is ready
        built = build_executor(measurer, _parallel_factory)
        assert isinstance(built, ParallelExecutor) and built.jobs == 2

    def test_cache_wrapping(self, dense_task):
        measurer = Measurer(dense_task, seed=3)
        cache = MeasureCache()
        ex = build_executor(measurer, "serial", cache=cache)
        assert isinstance(ex, CachingExecutor)
        assert ex.cache is cache
        # an executor that already caches is not double-wrapped
        assert build_executor(measurer, ex, cache=cache) is ex

    def test_unknown_spec_raises(self, dense_task):
        with pytest.raises(ValueError, match="unknown executor spec"):
            build_executor(Measurer(dense_task, seed=3), "threads")

    def test_base_class_is_abstract(self, dense_task):
        base = MeasureExecutor()
        with pytest.raises(NotImplementedError):
            base.measure_batch([0])


class TestTunerParallelDeterminism:
    """Same seed => identical TrialRecord sequences, serial vs parallel."""

    @pytest.mark.parametrize("arm", ["autotvm", "bted", "bted+bao"])
    def test_records_identical_across_backends(
        self, arm, small_task, dense_task
    ):
        kwargs = {
            "autotvm": {"init_size": 8, "sa_chains": 16, "sa_steps": 10},
            "bted": {"init_size": 8, "batch_candidates": 32, "num_batches": 2},
            "bted+bao": {
                "init_size": 8,
                "batch_candidates": 32,
                "num_batches": 2,
            },
        }[arm]
        for task in (small_task, dense_task):
            runs = []
            for spec in (None, _parallel_factory):
                tuner = make_tuner(
                    arm, task, seed=11, executor=spec, **kwargs
                )
                try:
                    result = tuner.tune(n_trial=20, early_stopping=None)
                finally:
                    tuner.shutdown()
                runs.append(result.records)
            assert runs[0] == runs[1], (arm, task.name)
