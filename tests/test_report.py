"""Tests for repro.experiments.report."""

from pathlib import Path

import pytest

from repro.experiments.report import (
    build_report,
    summarize_results_dir,
    write_report,
)


@pytest.fixture
def results_dir(tmp_path):
    (tmp_path / "fig4_convergence.txt").write_text("Fig. 4 data\n")
    (tmp_path / "table1_end_to_end.txt").write_text("Table I data\n")
    return tmp_path


class TestSummary:
    def test_present_and_missing(self, results_dir):
        summary = summarize_results_dir(results_dir)
        assert "fig4_convergence" in summary.present
        assert "fig5_mobilenet_tasks" in summary.missing
        assert not summary.complete

    def test_empty_dir(self, tmp_path):
        summary = summarize_results_dir(tmp_path)
        assert summary.present == []


class TestBuildReport:
    def test_includes_artifact_content(self, results_dir):
        report = build_report(results_dir)
        assert "Fig. 4 data" in report
        assert "Table I data" in report

    def test_marks_missing_sections(self, results_dir):
        report = build_report(results_dir)
        assert "not generated" in report

    def test_can_suppress_missing(self, results_dir):
        report = build_report(results_dir, include_missing=False)
        assert "not generated" not in report

    def test_title(self, results_dir):
        assert build_report(results_dir, title="My Title").startswith(
            "# My Title"
        )


class TestWriteReport:
    def test_writes_file(self, results_dir, tmp_path):
        out = write_report(results_dir, tmp_path / "report.md")
        assert out.exists()
        assert "Fig. 4 data" in out.read_text()

    def test_real_results_dir_if_available(self):
        real = Path(__file__).parent.parent / "benchmarks" / "results"
        if not real.exists():
            pytest.skip("benchmarks not run yet")
        report = build_report(real)
        assert "Reproduction report" in report
