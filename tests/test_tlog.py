"""Tests for repro.tlog: signatures, the database, and warm plans."""

import json

import numpy as np
import pytest

from repro.hardware.device import GTX_1080_TI, TITAN_V
from repro.nn.workloads import Conv2DWorkload, DenseWorkload
from repro.space.space import ConfigEntity
from repro.space.templates import build_space
from repro.tlog import (
    TLOG_VERSION,
    TaskSignature,
    TlogRecord,
    TuningLogDB,
    build_warm_start,
    shape_distance,
)
from repro.tlog.db import TlogVersionError
from repro.tlog.warm import project_records


def conv(channels=64, size=28):
    return Conv2DWorkload(
        batch=1, in_channels=channels, out_channels=channels,
        height=size, width=size, kernel_h=3, kernel_w=3,
        pad_h=1, pad_w=1,
    )


def sig_of(workload, device=GTX_1080_TI, template="direct"):
    return TaskSignature.of(
        workload, build_space(workload, template), device, template=template
    )


def records_for(space, n=8, base=100.0):
    """n valid records over the first n configs of ``space``."""
    digits = space.decode_batch(np.arange(n))
    return [
        TlogRecord(
            config_index=i,
            knob_indices=tuple(int(d) for d in digits[i]),
            gflops=base + i,
            tuner="test",
        )
        for i in range(n)
    ]


class TestSignature:
    def test_stable_across_instances(self):
        a, b = sig_of(conv()), sig_of(conv())
        assert a == b
        assert a.key == b.key

    def test_key_varies_with_shape(self):
        assert sig_of(conv(64)).key != sig_of(conv(128)).key

    def test_key_varies_with_device(self):
        assert sig_of(conv()).key != sig_of(conv(), device=TITAN_V).key

    def test_transferable_same_kind(self):
        assert sig_of(conv(64)).transferable_to(sig_of(conv(128)))

    def test_not_transferable_across_kinds(self):
        dense = DenseWorkload(1, 512, 1000)
        assert not sig_of(dense).transferable_to(sig_of(conv()))

    def test_roundtrip_dict(self):
        sig = sig_of(conv())
        assert TaskSignature.from_dict(sig.to_dict()) == sig

    def test_from_dict_rejects_garbage(self):
        with pytest.raises(ValueError):
            TaskSignature.from_dict({"kind": "conv2d"})

    def test_shape_distance(self):
        a, b = sig_of(conv(64)), sig_of(conv(64))
        assert shape_distance(a, b) == 0.0
        far = sig_of(conv(128))
        near = sig_of(conv(96))
        assert 0 < shape_distance(a, near) < shape_distance(a, far)

    def test_shape_distance_infinite_across_field_sets(self):
        dense = sig_of(DenseWorkload(1, 512, 1000))
        assert shape_distance(dense, sig_of(conv())) == float("inf")


class TestContentHash:
    def test_config_entity_hash_across_space_instances(self):
        w = conv()
        s1, s2 = build_space(w), build_space(w)
        assert hash(ConfigEntity(s1, 7)) == hash(ConfigEntity(s2, 7))
        assert ConfigEntity(s1, 7) == ConfigEntity(s2, 7)
        assert ConfigEntity(s1, 7) != ConfigEntity(s2, 8)

    def test_different_workloads_differ(self):
        assert (
            build_space(conv(64)).content_hash()
            != build_space(conv(128)).content_hash()
        )


class TestDB:
    def test_roundtrip(self, tmp_path):
        sig = sig_of(conv())
        space = build_space(conv())
        db = TuningLogDB(tmp_path / "db")
        recs = records_for(space)
        assert db.record_task(sig, recs) == len(recs)
        again = TuningLogDB.load(tmp_path / "db")
        assert again.lookup_exact(sig) == recs
        assert again.best_exact(sig).gflops == recs[-1].gflops

    def test_lookup_missing_is_none(self, tmp_path):
        db = TuningLogDB(tmp_path / "db")
        assert db.lookup_exact(sig_of(conv())) is None
        assert db.best_exact(sig_of(conv())) is None

    def test_load_requires_index(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            TuningLogDB.load(tmp_path / "nope")

    def test_run_key_idempotent(self, tmp_path):
        sig = sig_of(conv())
        space = build_space(conv())
        db = TuningLogDB(tmp_path / "db")
        recs = records_for(space)
        assert db.record_task(sig, recs, run_key="r1") == len(recs)
        assert db.record_task(sig, recs, run_key="r1") == 0
        assert len(db.lookup_exact(sig)) == len(recs)
        # idempotency survives reopening
        again = TuningLogDB.load(tmp_path / "db")
        assert again.record_task(sig, recs, run_key="r1") == 0

    def test_rejects_future_version(self, tmp_path):
        db = TuningLogDB(tmp_path / "db")
        db.record_task(sig_of(conv()), records_for(build_space(conv())))
        index = tmp_path / "db" / "index.json"
        doc = json.loads(index.read_text())
        doc["version"] = TLOG_VERSION + 1
        index.write_text(json.dumps(doc))
        with pytest.raises(TlogVersionError, match="not readable"):
            TuningLogDB.load(tmp_path / "db")

    def test_torn_final_line_dropped(self, tmp_path):
        sig = sig_of(conv())
        space = build_space(conv())
        db = TuningLogDB(tmp_path / "db")
        recs = records_for(space, n=4)
        db.record_task(sig, recs)
        seg = next((tmp_path / "db" / "segments").glob("*.jsonl"))
        with seg.open("a") as fh:
            fh.write('{"config_index": 3, "gf')  # torn mid-append
        assert TuningLogDB.load(tmp_path / "db").lookup_exact(sig) == recs

    def test_malformed_interior_line_raises(self, tmp_path):
        sig = sig_of(conv())
        db = TuningLogDB(tmp_path / "db")
        db.record_task(sig, records_for(build_space(conv()), n=2))
        seg = next((tmp_path / "db" / "segments").glob("*.jsonl"))
        lines = seg.read_text().splitlines()
        lines.insert(1, "not json {")
        seg.write_text("\n".join(lines) + "\n")
        with pytest.raises(ValueError, match=":2"):
            TuningLogDB.load(tmp_path / "db").lookup_exact(sig)

    def test_top_k_similar_orders_by_shape(self, tmp_path):
        db = TuningLogDB(tmp_path / "db")
        for channels in (64, 96, 256):
            w = conv(channels)
            db.record_task(sig_of(w), records_for(build_space(w), n=3))
        target = sig_of(conv(80))
        hits = db.top_k_similar(target, k=2)
        # log2 distance: 96 is nearer to 80 than 64; 256 misses the cut
        assert [dict(s.shape)["in_channels"] for s, _ in hits] == [96, 64]

    def test_top_k_similar_exact_first(self, tmp_path):
        db = TuningLogDB(tmp_path / "db")
        for channels in (64, 96):
            w = conv(channels)
            db.record_task(sig_of(w), records_for(build_space(w), n=3))
        hits = db.top_k_similar(sig_of(conv(64)), k=2)
        assert hits[0][0] == sig_of(conv(64))
        without = db.top_k_similar(
            sig_of(conv(64)), k=2, include_exact=False
        )
        assert all(s != sig_of(conv(64)) for s, _ in without)

    def test_top_k_same_device_filter(self, tmp_path):
        db = TuningLogDB(tmp_path / "db")
        w = conv()
        db.record_task(
            sig_of(w, device=TITAN_V), records_for(build_space(w), n=3)
        )
        target = sig_of(w, device=GTX_1080_TI)
        assert db.top_k_similar(target, k=4)  # cross-device by default
        assert not db.top_k_similar(target, k=4, same_device=True)

    def test_top_k_cross_device_filter(self, tmp_path):
        db = TuningLogDB(tmp_path / "db")
        w = conv()
        db.record_task(
            sig_of(w, device=GTX_1080_TI), records_for(build_space(w), n=3)
        )
        db.record_task(
            sig_of(w, device=TITAN_V), records_for(build_space(w), n=3)
        )
        target = sig_of(w, device=GTX_1080_TI)
        foreign = db.top_k_similar(target, k=4, cross_device=True)
        assert foreign
        assert all(
            s.device_class != target.device_class for s, _ in foreign
        )

    def test_top_k_device_filters_are_exclusive(self, tmp_path):
        db = TuningLogDB(tmp_path / "db")
        with pytest.raises(ValueError, match="mutually exclusive"):
            db.top_k_similar(
                sig_of(conv()), k=4, same_device=True, cross_device=True
            )


class TestWarmPlan:
    def test_projection_clamps_digits(self):
        small, large = conv(64, 14), conv(64, 56)
        sspace, lspace = build_space(small), build_space(large)
        recs = records_for(lspace, n=16)
        indices, scores = project_records(recs, sspace)
        assert len(indices) == len(scores) == 16
        assert all(0 <= i < len(sspace) for i in indices)
        sizes = np.asarray(sspace.knob_sizes)
        assert (sspace.decode_batch(indices) < sizes[None, :]).all()

    def test_projection_drops_bad_records(self):
        space = build_space(conv())
        bad = TlogRecord(0, (0,), 100.0)  # wrong digit count
        err = TlogRecord(
            1, tuple([0] * len(space.knob_sizes)), 0.0, error="boom"
        )
        indices, _ = project_records([bad, err], space)
        assert len(indices) == 0

    def test_exact_plan(self, tmp_path):
        w = conv()
        space = build_space(w)
        db = TuningLogDB(tmp_path / "db")
        db.record_task(sig_of(w), records_for(space, n=12))
        plan = build_warm_start(db, sig_of(w), space, k=4)
        assert plan.source == "exact"
        assert len(plan.configs) == 4
        # best stored config (highest gflops = last record) leads
        assert plan.configs[0] == 11
        assert plan.history is not None and plan.history_samples == 12

    def test_similar_plan(self, tmp_path):
        src, dst = conv(64), conv(96)
        db = TuningLogDB(tmp_path / "db")
        db.record_task(sig_of(src), records_for(build_space(src), n=6))
        plan = build_warm_start(db, sig_of(dst), build_space(dst), k=4)
        assert plan is not None and plan.source == "similar"

    def test_empty_db_returns_none(self, tmp_path):
        w = conv()
        db = TuningLogDB(tmp_path / "db")
        assert build_warm_start(db, sig_of(w), build_space(w)) is None

    def test_deterministic(self, tmp_path):
        w = conv()
        space = build_space(w)
        db = TuningLogDB(tmp_path / "db")
        db.record_task(sig_of(w), records_for(space, n=12))
        a = build_warm_start(db, sig_of(w), space, k=4)
        b = build_warm_start(
            TuningLogDB.load(tmp_path / "db"), sig_of(w), space, k=4
        )
        assert a.configs == b.configs
        assert a.history_samples == b.history_samples

    def test_device_filtered_plans(self, tmp_path):
        w = conv()
        space = build_space(w)
        db = TuningLogDB(tmp_path / "db")
        db.record_task(sig_of(w, device=TITAN_V), records_for(space, n=6))
        target = sig_of(w, device=GTX_1080_TI)
        # same-class sources only: nothing to warm-start from
        assert build_warm_start(db, target, space, device="same") is None
        # cross-class sources only: the titanv history qualifies, and
        # the plan counts its foreign segments
        plan = build_warm_start(db, target, space, device="cross")
        assert plan is not None
        assert plan.cross_sources == 1
        # a same-class plan carries no foreign sources
        own = build_warm_start(db, sig_of(w, device=TITAN_V), space)
        assert own.cross_sources == 0

    def test_bad_device_mode_rejected(self, tmp_path):
        w = conv()
        db = TuningLogDB(tmp_path / "db")
        with pytest.raises(ValueError, match="device"):
            build_warm_start(db, sig_of(w), build_space(w), device="near")
