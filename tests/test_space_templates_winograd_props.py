"""Property tests for template dispatch and Winograd cost-model sanity."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.hardware.measure import SimulatedTask
from repro.hardware.resources import ResourceError
from repro.nn.workloads import Conv2DWorkload
from repro.space.templates import (
    available_templates,
    build_space,
    winograd_applicable,
)

COMMON = settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def wino_workloads(draw):
    """Random Winograd-eligible 3x3 unit-stride convolutions."""
    channels = draw(st.sampled_from([4, 8, 16]))
    out = draw(st.sampled_from([4, 8, 16]))
    size = draw(st.sampled_from([6, 8, 12, 14]))
    return Conv2DWorkload(
        1, channels, out, size, size, 3, 3, pad_h=1, pad_w=1
    )


class TestTemplateProperties:
    @given(wino_workloads())
    @COMMON
    def test_templates_listed_consistently(self, wl):
        templates = available_templates(wl)
        assert templates[0] == "direct"
        assert ("winograd" in templates) == winograd_applicable(wl)

    @given(wino_workloads())
    @COMMON
    def test_winograd_space_addressing(self, wl):
        space = build_space(wl, template="winograd")
        probe = np.linspace(0, len(space) - 1, 20).astype(np.int64)
        digits = space.decode_batch(probe)
        assert (space.encode_batch(digits) == probe).all()
        # tile products must reconstruct the extents
        entity = space.get(int(probe[-1]))
        k = 1
        for f in entity["tile_k"]:
            k *= f
        assert k == wl.out_channels

    @given(wino_workloads())
    @COMMON
    def test_winograd_profiles_sane(self, wl):
        task = SimulatedTask(wl, seed=0, template="winograd")
        for idx in task.space.sample(min(len(task.space), 25), seed=0):
            try:
                profile = task.profile_of(int(idx))
            except ResourceError:
                continue
            assert np.isfinite(profile.gflops)
            assert profile.gflops > 0
            assert profile.time_s > 0
            assert 0 <= profile.noise_sigma_rel < 0.5

    @given(wino_workloads())
    @COMMON
    def test_direct_and_winograd_tasks_are_distinct_problems(self, wl):
        direct = SimulatedTask(wl, seed=0, template="direct")
        wino = SimulatedTask(wl, seed=0, template="winograd")
        assert len(direct.space.knobs) != len(wino.space.knobs)
