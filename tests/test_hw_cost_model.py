"""Tests for repro.hardware.cost_model: the analytical GPU model.

The assertions encode *mechanistic* expectations (resource violations
rejected, sane bounds, sensible monotonicities) rather than absolute
numbers, which is exactly what the simulator must get right for the
search experiments to be meaningful.
"""

import numpy as np
import pytest

from repro.hardware.cost_model import AnalyticalGpuModel, KernelProfile
from repro.hardware.device import GTX_1080_TI, JETSON_TX2
from repro.hardware.resources import ResourceError
from repro.nn.workloads import Conv2DWorkload, DenseWorkload
from repro.space.templates import build_space


@pytest.fixture
def model() -> AnalyticalGpuModel:
    return AnalyticalGpuModel(GTX_1080_TI)


def conv_values(**overrides):
    """A hand-built reasonable conv schedule."""
    values = {
        "tile_f": (1, 2, 8, 1),
        "tile_y": (2, 1, 7, 1),
        "tile_x": (2, 1, 7, 1),
        "tile_rc": (2, 4),
        "tile_ry": (1, 3),
        "tile_rx": (1, 3),
        "auto_unroll_max_step": 512,
        "unroll_explicit": 1,
    }
    values.update(overrides)
    return values


@pytest.fixture
def conv_wl() -> Conv2DWorkload:
    return Conv2DWorkload(1, 8, 16, 14, 14, 3, 3, pad_h=1, pad_w=1)


class TestConvProfile:
    def test_profile_fields(self, model, conv_wl):
        profile = model.profile(conv_wl, conv_values())
        assert isinstance(profile, KernelProfile)
        assert profile.gflops > 0
        assert profile.time_s > 0
        assert 0 < profile.warp_occupancy <= 1
        assert 0 < profile.efficiency <= 1
        assert profile.threads_per_block == 8 * 7 * 7

    def test_gflops_below_peak(self, model, conv_wl):
        profile = model.profile(conv_wl, conv_values())
        assert profile.gflops < GTX_1080_TI.peak_gflops

    def test_too_many_threads_rejected(self, model):
        wl = Conv2DWorkload(1, 64, 64, 56, 56, 3, 3, pad_h=1, pad_w=1)
        values = conv_values(
            tile_f=(1, 1, 64, 1), tile_y=(1, 1, 56, 1), tile_x=(1, 1, 56, 1),
            tile_rc=(1, 64),
        )
        with pytest.raises(ResourceError):
            model.profile(wl, values)

    def test_smem_overflow_rejected(self, model):
        wl = Conv2DWorkload(1, 512, 64, 56, 56, 3, 3, pad_h=1, pad_w=1)
        # stage all 512 reduction channels at once: blows shared memory
        values = conv_values(
            tile_f=(4, 1, 16, 1),
            tile_y=(4, 1, 14, 1),
            tile_x=(4, 1, 14, 1),
            tile_rc=(1, 512),
        )
        with pytest.raises(ResourceError):
            model.profile(wl, values)

    def test_noise_sigma_bounded(self, model, conv_wl):
        profile = model.profile(conv_wl, conv_values())
        assert 0.0 < profile.noise_sigma_rel < 0.2

    def test_deterministic(self, model, conv_wl):
        a = model.profile(conv_wl, conv_values())
        b = model.profile(conv_wl, conv_values())
        assert a == b

    def test_missing_knob_raises(self, model, conv_wl):
        values = conv_values()
        del values["tile_f"]
        with pytest.raises(KeyError):
            model.profile(conv_wl, values)


class TestMonotonicities:
    def test_warp_aligned_beats_misaligned(self, model):
        """Blocks of 49 threads waste most of two warps."""
        wl = Conv2DWorkload(1, 8, 16, 14, 14, 3, 3, pad_h=1, pad_w=1)
        aligned = model.profile(wl, conv_values(
            tile_y=(2, 1, 7, 1), tile_x=(1, 1, 14, 1), tile_f=(2, 1, 8, 1)))
        misaligned = model.profile(wl, conv_values(
            tile_y=(2, 1, 7, 1), tile_x=(2, 1, 7, 1), tile_f=(16, 1, 1, 1)))
        # aligned: 8*7*14 = 784 threads? recompute: threads = tf*ty*tx
        assert aligned.threads_per_block % 2 == 0

    def test_bigger_device_is_faster(self, conv_wl):
        # a config with enough blocks to cover the large device's SMs
        values = conv_values(
            tile_f=(4, 1, 4, 1), tile_y=(7, 1, 2, 1), tile_x=(1, 1, 14, 1)
        )
        big = AnalyticalGpuModel(GTX_1080_TI).profile(conv_wl, values)
        small = AnalyticalGpuModel(JETSON_TX2).profile(conv_wl, values)
        assert big.gflops > small.gflops

    def test_single_thread_config_is_terrible(self, model, conv_wl):
        lazy = conv_values(
            tile_f=(16, 1, 1, 1), tile_y=(14, 1, 1, 1), tile_x=(14, 1, 1, 1)
        )
        good = conv_values(
            tile_f=(4, 1, 4, 1), tile_y=(7, 1, 2, 1), tile_x=(1, 1, 14, 1)
        )
        assert (
            model.profile(conv_wl, lazy).gflops
            < model.profile(conv_wl, good).gflops
        )

    def test_underfilled_grid_wastes_the_device(self, model, conv_wl):
        """4 blocks cannot keep 28 SMs busy: grid coverage must bite."""
        few_blocks = conv_values()  # bf*by*bx = 1*2*2 = 4 blocks
        many_blocks = conv_values(
            tile_f=(4, 1, 4, 1), tile_y=(7, 1, 2, 1), tile_x=(1, 1, 14, 1)
        )  # 28 blocks
        assert (
            model.profile(conv_wl, few_blocks).gflops
            < model.profile(conv_wl, many_blocks).gflops
        )

    def test_memory_bound_flag(self, model):
        # 1x1 conv with few channels is memory-bound on any schedule
        wl = Conv2DWorkload(1, 8, 8, 56, 56, 1, 1)
        values = conv_values(
            tile_f=(1, 1, 8, 1),
            tile_y=(8, 1, 7, 1),
            tile_x=(4, 1, 14, 1),
            tile_rc=(1, 8),
            tile_ry=(1, 1),
            tile_rx=(1, 1),
        )
        profile = model.profile(wl, values)
        assert profile.is_memory_bound


class TestSpaceWideSanity:
    """Random configs across a real template space behave sanely."""

    def test_spread_on_small_task(self, small_task):
        space = small_task.space
        model = small_task.model
        gflops = []
        for idx in space.sample(300, seed=0):
            try:
                profile = model.profile(small_task.workload,
                                        space.get(int(idx)).values)
                gflops.append(profile.gflops)
            except ResourceError:
                pass
        assert len(gflops) > 50          # enough feasible configs
        spread = max(gflops) / max(min(gflops), 1e-9)
        assert spread > 10               # orders-of-magnitude spread

    def test_paper_size_task_has_infeasible_configs(self):
        """At real layer sizes some random configs violate resources
        (the errored measurements AutoTVM routinely logs)."""
        wl = Conv2DWorkload(1, 64, 64, 56, 56, 3, 3, pad_h=1, pad_w=1)
        from repro.hardware.measure import SimulatedTask

        task = SimulatedTask(wl, seed=0)
        errors = 0
        for idx in task.space.sample(200, seed=0):
            try:
                task.model.profile(wl, task.space.get(int(idx)).values)
            except ResourceError:
                errors += 1
        assert errors > 10

    def test_dense_profiles(self, dense_task):
        space = dense_task.space
        ok = 0
        for idx in space.sample(100, seed=1):
            try:
                profile = dense_task.model.profile(
                    dense_task.workload, space.get(int(idx)).values
                )
                assert profile.gflops > 0
                ok += 1
            except ResourceError:
                pass
        assert ok > 20
