"""Tests for repro.space.neighborhood."""

import numpy as np
import pytest

from repro.space.knobs import OtherKnob, SplitKnob
from repro.space.neighborhood import neighbors_within, sample_neighborhood
from repro.space.space import ConfigSpace


def lattice_space(sizes=(5, 5, 5)) -> ConfigSpace:
    """A space whose knob indices form a plain integer lattice."""
    space = ConfigSpace("lattice")
    for i, size in enumerate(sizes):
        space.add_knob(OtherKnob(f"k{i}", list(range(size))))
    return space


class TestNeighborsWithin:
    def test_radius_one_gives_unit_steps(self):
        space = lattice_space()
        center = space.encode([2, 2, 2])
        neighbors = neighbors_within(space, center, radius=1.0)
        assert len(neighbors) == 6  # +-1 per knob

    def test_radius_counts_in_ball(self):
        space = lattice_space()
        center = space.encode([2, 2, 2])
        neighbors = neighbors_within(space, center, radius=1.5)
        # {offsets with norm <= 1.5}: 6 units + 12 diagonal pairs = 18
        assert len(neighbors) == 18

    def test_boundary_clipping(self):
        space = lattice_space()
        corner = space.encode([0, 0, 0])
        neighbors = neighbors_within(space, corner, radius=1.0)
        assert len(neighbors) == 3

    def test_center_excluded(self):
        space = lattice_space()
        center = space.encode([2, 2, 2])
        assert center not in neighbors_within(space, center, radius=2.0)

    def test_zero_radius(self):
        space = lattice_space()
        assert neighbors_within(space, 0, radius=0.0) == []


class TestSampleNeighborhood:
    def test_respects_index_radius(self):
        space = lattice_space((9, 9, 9))
        center = space.encode([4, 4, 4])
        sampled = sample_neighborhood(
            space, center, radius=2.0, max_points=100, seed=0, metric="index"
        )
        center_digits = np.array([4, 4, 4])
        for idx in sampled:
            offset = np.array(space.decode(int(idx))) - center_digits
            assert np.sum(offset**2) <= 4.0 + 1e-9

    def test_respects_feature_radius(self):
        space = ConfigSpace("feat")
        space.add_knob(SplitKnob("tile", 64, 3))
        space.add_knob(OtherKnob("u", [0, 512, 1500]))
        center = 10
        radius = 2.5
        sampled = sample_neighborhood(
            space, center, radius=radius, max_points=64, seed=0,
            metric="feature",
        )
        center_feat = space.features_of(center)
        feats = space.feature_matrix(sampled)
        dists = np.linalg.norm(feats - center_feat, axis=1)
        # lattice +-1 steps are always included and may exceed the radius;
        # every *other* point must be inside the ball
        lattice = set()
        digits = np.array(space.decode(center))
        for k, size in enumerate(space.knob_sizes):
            for step in (-1, 1):
                cand = digits.copy()
                cand[k] += step
                if 0 <= cand[k] < size:
                    lattice.add(space.encode(cand))
        for idx, dist in zip(sampled, dists):
            if int(idx) not in lattice:
                assert dist <= radius + 1e-9

    def test_center_never_returned(self):
        space = lattice_space()
        center = space.encode([2, 2, 2])
        sampled = sample_neighborhood(space, center, 2.0, 50, seed=1)
        assert center not in set(sampled.tolist())

    def test_distinct(self):
        space = lattice_space((7, 7, 7))
        sampled = sample_neighborhood(space, space.encode([3, 3, 3]), 3.0,
                                      200, seed=2)
        assert len(set(sampled.tolist())) == len(sampled)

    def test_max_points_cap(self):
        space = lattice_space((9, 9, 9))
        sampled = sample_neighborhood(space, space.encode([4, 4, 4]), 4.0,
                                      10, seed=3)
        assert len(sampled) <= 10

    def test_deterministic(self):
        space = lattice_space((9, 9, 9))
        a = sample_neighborhood(space, 0, 3.0, 40, seed=9)
        b = sample_neighborhood(space, 0, 3.0, 40, seed=9)
        assert (a == b).all()

    def test_zero_radius_empty(self):
        space = lattice_space()
        assert len(sample_neighborhood(space, 0, 0.0, 10, seed=0)) == 0

    def test_invalid_metric(self):
        space = lattice_space()
        with pytest.raises(ValueError):
            sample_neighborhood(space, 0, 1.0, 10, seed=0, metric="cosine")

    def test_real_template_space(self, small_task):
        space = small_task.space
        center = int(space.sample(1, seed=5)[0])
        sampled = sample_neighborhood(space, center, 3.0, 128, seed=4)
        assert len(sampled) > 10
        assert center not in set(sampled.tolist())
