"""Tests for repro.space.neighborhood."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.space.knobs import OtherKnob, SplitKnob
from repro.space.neighborhood import (
    axis_steps,
    neighbors_within,
    sample_neighborhood,
)
from repro.space.space import ConfigSpace


def lattice_space(sizes=(5, 5, 5)) -> ConfigSpace:
    """A space whose knob indices form a plain integer lattice."""
    space = ConfigSpace("lattice")
    for i, size in enumerate(sizes):
        space.add_knob(OtherKnob(f"k{i}", list(range(size))))
    return space


class TestNeighborsWithin:
    def test_radius_one_gives_unit_steps(self):
        space = lattice_space()
        center = space.encode([2, 2, 2])
        neighbors = neighbors_within(space, center, radius=1.0)
        assert len(neighbors) == 6  # +-1 per knob

    def test_radius_counts_in_ball(self):
        space = lattice_space()
        center = space.encode([2, 2, 2])
        neighbors = neighbors_within(space, center, radius=1.5)
        # {offsets with norm <= 1.5}: 6 units + 12 diagonal pairs = 18
        assert len(neighbors) == 18

    def test_boundary_clipping(self):
        space = lattice_space()
        corner = space.encode([0, 0, 0])
        neighbors = neighbors_within(space, corner, radius=1.0)
        assert len(neighbors) == 3

    def test_center_excluded(self):
        space = lattice_space()
        center = space.encode([2, 2, 2])
        assert center not in neighbors_within(space, center, radius=2.0)

    def test_zero_radius(self):
        space = lattice_space()
        assert neighbors_within(space, 0, radius=0.0) == []


#: (knob sizes, center digits) with the center in range per knob
lattice_centers = st.lists(
    st.integers(1, 9), min_size=1, max_size=4
).flatmap(
    lambda sizes: st.tuples(
        st.just(tuple(sizes)),
        st.tuples(*[st.integers(0, s - 1) for s in sizes]),
    )
)


class TestAxisSteps:
    def test_interior_center_both_directions(self):
        space = lattice_space((5, 5, 5))
        center = space.encode([2, 2, 2])
        out = axis_steps(space, center, step=1)
        assert len(out) == 6
        digits = space.decode_batch(out)
        deltas = digits - np.array([2, 2, 2])[None, :]
        assert (np.abs(deltas).sum(axis=1) == 1).all()

    def test_overshoot_clamps_to_boundary(self):
        space = lattice_space((5,))
        center = space.encode([2])
        out = axis_steps(space, center, step=10)
        # -10 clamps to 0, +10 clamps to 4
        assert sorted(space.decode(int(i))[0] for i in out) == [0, 4]

    def test_corner_center_drops_collapsed_moves(self):
        space = lattice_space((5, 5))
        corner = space.encode([0, 0])
        out = axis_steps(space, corner, step=1)
        # the -1 moves clamp back onto the corner and are dropped
        assert sorted(
            list(space.decode(int(i))) for i in out
        ) == [[0, 1], [1, 0]]

    def test_size_one_knobs_yield_nothing(self):
        space = lattice_space((1, 1))
        assert len(axis_steps(space, 0, step=3)) == 0

    def test_step_must_be_positive(self):
        space = lattice_space()
        with pytest.raises(ValueError):
            axis_steps(space, 0, step=0)

    def test_deterministic_order(self):
        space = lattice_space((7, 7, 7))
        center = space.encode([3, 1, 6])
        a = axis_steps(space, center, step=2)
        b = axis_steps(space, center, step=2)
        assert (a == b).all()

    @settings(max_examples=60, deadline=None)
    @given(lattice_centers, st.integers(1, 12))
    def test_property_single_axis_clamped_moves(self, sc, step):
        sizes, center_digits = sc
        space = lattice_space(sizes)
        center = space.encode(list(center_digits))
        out = axis_steps(space, center, step)
        assert len(set(out.tolist())) == len(out)
        assert center not in set(out.tolist())
        for idx in out:
            assert 0 <= int(idx) < len(space)
            digits = np.array(space.decode(int(idx)))
            deltas = digits - np.array(center_digits)
            changed = np.nonzero(deltas)[0]
            # exactly one knob moved, by at most `step`
            assert len(changed) == 1
            k = int(changed[0])
            assert abs(int(deltas[k])) <= step
            # a shorter-than-step move means the knob hit a boundary
            if abs(int(deltas[k])) < step:
                assert digits[k] in (0, sizes[k] - 1)

    @settings(max_examples=40, deadline=None)
    @given(lattice_centers, st.integers(1, 12))
    def test_property_every_reachable_axis_point_found(self, sc, step):
        """Each knob contributes its clamped ±step targets exactly."""
        sizes, center_digits = sc
        space = lattice_space(sizes)
        center = space.encode(list(center_digits))
        expected = set()
        for k, size in enumerate(sizes):
            for target in (
                max(0, center_digits[k] - step),
                min(size - 1, center_digits[k] + step),
            ):
                if target != center_digits[k]:
                    cand = list(center_digits)
                    cand[k] = target
                    expected.add(space.encode(cand))
        out = axis_steps(space, center, step)
        assert set(out.tolist()) == expected


class TestSampleNeighborhood:
    def test_respects_index_radius(self):
        space = lattice_space((9, 9, 9))
        center = space.encode([4, 4, 4])
        sampled = sample_neighborhood(
            space, center, radius=2.0, max_points=100, seed=0, metric="index"
        )
        center_digits = np.array([4, 4, 4])
        for idx in sampled:
            offset = np.array(space.decode(int(idx))) - center_digits
            assert np.sum(offset**2) <= 4.0 + 1e-9

    def test_respects_feature_radius(self):
        space = ConfigSpace("feat")
        space.add_knob(SplitKnob("tile", 64, 3))
        space.add_knob(OtherKnob("u", [0, 512, 1500]))
        center = 10
        radius = 2.5
        sampled = sample_neighborhood(
            space, center, radius=radius, max_points=64, seed=0,
            metric="feature",
        )
        center_feat = space.features_of(center)
        feats = space.feature_matrix(sampled)
        dists = np.linalg.norm(feats - center_feat, axis=1)
        # lattice +-1 steps are always included and may exceed the radius;
        # every *other* point must be inside the ball
        lattice = set()
        digits = np.array(space.decode(center))
        for k, size in enumerate(space.knob_sizes):
            for step in (-1, 1):
                cand = digits.copy()
                cand[k] += step
                if 0 <= cand[k] < size:
                    lattice.add(space.encode(cand))
        for idx, dist in zip(sampled, dists):
            if int(idx) not in lattice:
                assert dist <= radius + 1e-9

    def test_center_never_returned(self):
        space = lattice_space()
        center = space.encode([2, 2, 2])
        sampled = sample_neighborhood(space, center, 2.0, 50, seed=1)
        assert center not in set(sampled.tolist())

    def test_distinct(self):
        space = lattice_space((7, 7, 7))
        sampled = sample_neighborhood(space, space.encode([3, 3, 3]), 3.0,
                                      200, seed=2)
        assert len(set(sampled.tolist())) == len(sampled)

    def test_max_points_cap(self):
        space = lattice_space((9, 9, 9))
        sampled = sample_neighborhood(space, space.encode([4, 4, 4]), 4.0,
                                      10, seed=3)
        assert len(sampled) <= 10

    def test_deterministic(self):
        space = lattice_space((9, 9, 9))
        a = sample_neighborhood(space, 0, 3.0, 40, seed=9)
        b = sample_neighborhood(space, 0, 3.0, 40, seed=9)
        assert (a == b).all()

    def test_zero_radius_empty(self):
        space = lattice_space()
        assert len(sample_neighborhood(space, 0, 0.0, 10, seed=0)) == 0

    def test_invalid_metric(self):
        space = lattice_space()
        with pytest.raises(ValueError):
            sample_neighborhood(space, 0, 1.0, 10, seed=0, metric="cosine")

    def test_real_template_space(self, small_task):
        space = small_task.space
        center = int(space.sample(1, seed=5)[0])
        sampled = sample_neighborhood(space, center, 3.0, 128, seed=4)
        assert len(sampled) > 10
        assert center not in set(sampled.tolist())
