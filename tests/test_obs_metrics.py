"""Tests for repro.obs.metrics: counters, gauges, histograms, registry."""

import pytest

from repro.obs.metrics import (
    DEFAULT_SECONDS_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)


class TestCounter:
    def test_inc_accumulates(self):
        c = Counter("n")
        c.inc()
        c.inc(3)
        c.inc(0.5)
        assert c.value == pytest.approx(4.5)

    def test_rejects_decrease(self):
        c = Counter("n")
        with pytest.raises(ValueError, match="cannot decrease"):
            c.inc(-1)

    def test_merge_adds(self):
        a, b = Counter("n"), Counter("n")
        a.inc(2)
        b.inc(5)
        a.merge(b)
        assert a.value == 7

    def test_state_roundtrip(self):
        a = Counter("n")
        a.inc(9)
        b = Counter("n")
        b.load_state_dict(a.state_dict())
        assert b.value == 9


class TestGauge:
    def test_set_overwrites(self):
        g = Gauge("g")
        g.set(3)
        g.set(1.5)
        assert g.value == 1.5

    def test_merge_keeps_max(self):
        a, b = Gauge("g"), Gauge("g")
        a.set(2.0)
        b.set(7.0)
        a.merge(b)
        assert a.value == 7.0
        b.merge(a)
        assert b.value == 7.0


class TestHistogram:
    def test_edges_must_be_sorted_nonempty(self):
        with pytest.raises(ValueError):
            Histogram("h", edges=())
        with pytest.raises(ValueError):
            Histogram("h", edges=(2.0, 1.0))

    def test_observe_bucket_placement(self):
        h = Histogram("h", edges=(1.0, 2.0, 4.0))
        for v in (0.5, 1.0, 1.5, 4.0, 100.0):
            h.observe(v)
        # le semantics: a value equal to an edge lands in that bucket
        assert h.bucket_counts == [2, 1, 1, 1]
        assert h.count == 5
        assert h.sum == pytest.approx(107.0)

    def test_state_roundtrip_and_edge_mismatch(self):
        a = Histogram("h", edges=(1.0, 2.0))
        a.observe(1.5)
        b = Histogram("h", edges=(1.0, 2.0))
        b.load_state_dict(a.state_dict())
        assert b.bucket_counts == a.bucket_counts
        c = Histogram("h", edges=(1.0, 3.0))
        with pytest.raises(ValueError, match="edges"):
            c.load_state_dict(a.state_dict())

    def test_merge_requires_same_edges(self):
        a = Histogram("h", edges=(1.0,))
        b = Histogram("h", edges=(2.0,))
        with pytest.raises(ValueError, match="edges differ"):
            a.merge(b)


class TestMetricsRegistry:
    def test_get_or_create_returns_same_instance(self):
        reg = MetricsRegistry()
        assert reg.counter("n") is reg.counter("n")
        assert reg.get("n") is not None
        assert "n" in reg and "m" not in reg

    def test_type_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(ValueError, match="already registered"):
            reg.gauge("x")

    def test_histogram_edge_conflict_raises(self):
        reg = MetricsRegistry()
        reg.histogram("h", edges=(1.0, 2.0))
        with pytest.raises(ValueError, match="different edges"):
            reg.histogram("h", edges=(1.0, 3.0))

    def test_iteration_sorted_by_name(self):
        reg = MetricsRegistry()
        reg.counter("b")
        reg.gauge("a")
        assert [m.name for m in reg] == ["a", "b"]

    def test_as_dict_flattens_histograms(self):
        reg = MetricsRegistry()
        reg.counter("n").inc(2)
        reg.histogram("h", edges=(1.0,)).observe(0.5)
        flat = reg.as_dict()
        assert flat == {"n": 2.0, "h_sum": 0.5, "h_count": 1.0}

    def test_state_roundtrip_creates_missing_metrics(self):
        reg = MetricsRegistry()
        reg.counter("n", "help text").inc(4)
        reg.gauge("g").set(1.5)
        reg.histogram("h", edges=(1.0, 2.0)).observe(1.2)
        fresh = MetricsRegistry()
        fresh.load_state_dict(reg.state_dict())
        assert fresh.as_dict() == reg.as_dict()
        assert fresh.get("n").help == "help text"
        assert fresh.get("h").edges == (1.0, 2.0)

    def test_load_rejects_type_change(self):
        reg = MetricsRegistry()
        reg.counter("x").inc()
        state = reg.state_dict()
        other = MetricsRegistry()
        other.gauge("x")
        with pytest.raises(ValueError, match="type changed"):
            other.load_state_dict(state)

    def test_merge_into_empty_copies(self):
        reg = MetricsRegistry()
        reg.counter("n").inc(3)
        reg.gauge("g").set(2.0)
        reg.histogram("h", edges=(1.0,)).observe(0.5)
        merged = MetricsRegistry()
        merged.merge(reg)
        merged.merge(reg)
        assert merged.get("n").value == 6
        assert merged.get("g").value == 2.0
        assert merged.get("h").count == 2

    def test_render_prometheus_format(self):
        reg = MetricsRegistry()
        reg.counter("batches_total", "measured batches").inc(3)
        reg.histogram("lat", edges=(1.0, 2.0)).observe(1.5)
        reg.get("lat").observe(10.0)
        text = reg.render_prometheus()
        lines = text.splitlines()
        assert "# HELP repro_batches_total measured batches" in lines
        assert "# TYPE repro_batches_total counter" in lines
        # integral values render without a trailing .0
        assert "repro_batches_total 3" in lines
        # buckets are cumulative and end with +Inf
        assert 'repro_lat_bucket{le="1"} 0' in lines
        assert 'repro_lat_bucket{le="2"} 1' in lines
        assert 'repro_lat_bucket{le="+Inf"} 2' in lines
        assert "repro_lat_count 2" in lines
        assert text.endswith("\n")

    def test_default_buckets_are_sorted(self):
        assert list(DEFAULT_SECONDS_BUCKETS) == sorted(
            DEFAULT_SECONDS_BUCKETS
        )
