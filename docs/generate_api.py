#!/usr/bin/env python
"""Regenerate docs/API.md from module docstrings.

Run:  python docs/generate_api.py
"""

import importlib
import inspect
from pathlib import Path

MODULES = [
    "repro",
    "repro.nn.workloads", "repro.nn.layers", "repro.nn.graph",
    "repro.nn.fusion", "repro.nn.zoo",
    "repro.space.knobs", "repro.space.space", "repro.space.templates",
    "repro.space.neighborhood", "repro.space.sampling",
    "repro.hardware.device", "repro.hardware.resources",
    "repro.hardware.cost_model", "repro.hardware.noise",
    "repro.hardware.measure", "repro.hardware.executor",
    "repro.hardware.calibration",
    "repro.learning.tree", "repro.learning.gbt", "repro.learning.mlp",
    "repro.learning.rank", "repro.learning.metrics", "repro.learning.sa",
    "repro.learning.transfer",
    "repro.core.ted", "repro.core.bted", "repro.core.bootstrap",
    "repro.core.bao", "repro.core.droplet", "repro.core.adaptive",
    "repro.core.tuner", "repro.core.tuners",
    "repro.core.callbacks", "repro.core.events",
    "repro.tlog.signature", "repro.tlog.db", "repro.tlog.warm",
    "repro.pipeline.tasks", "repro.pipeline.records",
    "repro.pipeline.compiler",
    "repro.experiments.settings", "repro.experiments.runner",
    "repro.experiments.engine", "repro.experiments.fig4",
    "repro.experiments.fig5", "repro.experiments.table1",
    "repro.experiments.ablation", "repro.experiments.analysis",
    "repro.experiments.report", "repro.experiments.transfer",
    "repro.experiments.adaptive",
    "repro.service", "repro.service.jobs", "repro.service.store",
    "repro.service.queue", "repro.service.runner", "repro.service.api",
    "repro.service.client", "repro.service.dashboard",
    "repro.utils.rng", "repro.utils.mathx", "repro.utils.plot",
]


def main() -> None:
    """Build docs/API.md next to this script."""
    lines = [
        "# API reference",
        "",
        "Auto-generated from module docstrings "
        "(`python docs/generate_api.py` regenerates this file).",
        "",
    ]
    for name in MODULES:
        module = importlib.import_module(name)
        doc = inspect.getdoc(module) or ""
        first_paragraph = doc.split("\n\n")[0].replace("\n", " ")
        lines.append(f"## `{name}`")
        lines.append("")
        lines.append(first_paragraph)
        lines.append("")
        publics = list(sorted(getattr(module, "__all__", []) or []))
        if not publics:
            for attr_name, attr in sorted(vars(module).items()):
                if attr_name.startswith("_"):
                    continue
                if inspect.isclass(attr) or inspect.isfunction(attr):
                    if getattr(attr, "__module__", "") == name:
                        publics.append(attr_name)
        if publics:
            lines.append("Public: " + ", ".join(f"`{p}`" for p in publics))
            lines.append("")
    out = Path(__file__).parent / "API.md"
    out.write_text("\n".join(lines))
    print(f"{out} written")


if __name__ == "__main__":
    main()
