"""Setup shim for environments without the `wheel` package.

Project metadata lives in pyproject.toml; this file exists so that
``pip install -e .`` works via the legacy setuptools develop path in
offline environments where PEP 660 editable wheels cannot be built.
"""

from setuptools import setup

setup()
