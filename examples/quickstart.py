#!/usr/bin/env python
"""Quickstart: tune one convolution layer with the advanced framework.

Builds a single ResNet-style 3x3 convolution workload, constructs its
CUDA schedule configuration space, and compares the AutoTVM baseline
against the paper's BTED+BAO framework on the simulated GTX 1080 Ti.

Run:  python examples/quickstart.py
"""

import argparse

from repro import SimulatedTask, make_tuner
from repro.nn.workloads import Conv2DWorkload


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--budget", type=int, default=256,
                        help="measurements per tuner")
    args = parser.parse_args()
    # a ResNet-18 stage-1 convolution: 64 -> 64 channels, 56x56, 3x3
    workload = Conv2DWorkload(
        batch=1,
        in_channels=64,
        out_channels=64,
        height=56,
        width=56,
        kernel_h=3,
        kernel_w=3,
        pad_h=1,
        pad_w=1,
    )
    task = SimulatedTask(workload, seed=2021)
    print(f"workload: {workload}")
    print(f"config space size: {len(task.space):,} points")
    print(f"feature dimension: {task.space.feature_dim}")
    print()

    for arm in ("random", "autotvm", "bted+bao"):
        tuner = make_tuner(arm, task, seed=0)
        result = tuner.tune(n_trial=args.budget, early_stopping=None)
        best_ms = 1e3 * task.true_time_s(result.best_index)
        print(
            f"{arm:>9s}: best {result.best_gflops:7.1f} GFLOPS "
            f"({best_ms:.4f} ms/kernel) "
            f"after {result.num_measurements} measurements"
        )

    print()
    print(
        "Typical outcome: both model-guided arms beat random; averaged "
        "over tasks and trials, bted+bao leads (paper Fig. 4 / Fig. 5)."
    )


if __name__ == "__main__":
    main()
