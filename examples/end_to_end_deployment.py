#!/usr/bin/env python
"""End-to-end deployment of MobileNet-v1 (the paper's headline workload).

Walks the full Fig. 1 pipeline: build the model graph, fuse operators,
extract the 19 tuning tasks, tune every node, compile the deployment,
and time repeated end-to-end inferences — reporting mean latency and
variance the way Table I does.  Tuning records are saved to a JSON-lines
log and replayed, demonstrating the AutoTVM-style record workflow.

Run:  python examples/end_to_end_deployment.py [--trials N] [--budget N]
"""

import argparse
import tempfile
from pathlib import Path

from repro import DeploymentCompiler, RecordStore, build_model
from repro.nn.fusion import fuse_graph


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--model", default="mobilenet-v1")
    parser.add_argument("--budget", type=int, default=160,
                        help="measurement budget per task")
    parser.add_argument("--arm", default="bted+bao",
                        choices=["random", "autotvm", "bted", "bted+bao"])
    parser.add_argument("--runs", type=int, default=600,
                        help="timed end-to-end runs")
    args = parser.parse_args()

    graph = build_model(args.model)
    print(graph.summary())
    print()

    fused = fuse_graph(graph)
    tunable = [op for op in fused if op.is_tunable]
    print(f"fusion: {len(graph)} nodes -> {len(fused)} fused kernels "
          f"({len(tunable)} tunable)")

    compiler = DeploymentCompiler(graph, env_seed=2021)
    print(f"tuning tasks after dedup: {len(compiler.tasks)}")
    print()

    store = RecordStore()

    def progress(spec, result):
        print(
            f"  T{spec.task_id + 1:<3d} {spec.workload.kind:<18s} "
            f"best {result.best_gflops:8.1f} GFLOPS "
            f"({result.num_measurements} measurements)"
        )

    compiled = compiler.tune(
        args.arm,
        n_trial=args.budget,
        early_stopping=None,
        record_store=store,
        progress=progress,
    )

    sample = compiled.measure_latency(num_runs=args.runs, seed=7)
    print()
    print(f"{args.model} via {args.arm}:")
    print(f"  mean latency : {sample.mean_ms:.4f} ms over {args.runs} runs")
    print(f"  variance     : {sample.variance:.6f}")
    print(f"  std-dev      : {sample.std_ms:.4f} ms")

    # persist + replay the tuning log (the AutoTVM record workflow)
    with tempfile.TemporaryDirectory() as tmp:
        log = Path(tmp) / "tuning_records.jsonl"
        store.save(log)
        replayed = RecordStore.load(log)
        recompiled = compiler.compile_from_records(replayed)
        resample = recompiled.measure_latency(num_runs=args.runs, seed=7)
        print(f"  replayed from {len(replayed)} logged records: "
              f"{resample.mean_ms:.4f} ms (identical deployment)")


if __name__ == "__main__":
    main()
