#!/usr/bin/env python
"""Port the framework to a new operator shape and a different GPU.

The paper argues the framework is general: it treats hardware as a
black box and is independent of the evaluation-function form.  This
example (1) tunes a custom grouped-convolution workload that appears in
none of the zoo models, and (2) retunes the same workload for an
embedded-class Jetson TX2 device, showing that the best schedule
changes with the target.

Run:  python examples/custom_operator_and_device.py
"""

import argparse

from repro import GTX_1080_TI, SimulatedTask, make_tuner
from repro.hardware.device import JETSON_TX2
from repro.nn.workloads import Conv2DWorkload


def tune_on(device, workload, budget: int) -> None:
    task = SimulatedTask(workload, device=device, seed=2021)
    tuner = make_tuner("bted+bao", task, seed=5)
    result = tuner.tune(n_trial=budget, early_stopping=None)
    entity = task.space.get(result.best_index)
    print(f"  {device.name}:")
    print(f"    best {result.best_gflops:8.1f} GFLOPS "
          f"({1e3 * task.true_time_s(result.best_index):.4f} ms)")
    print(f"    tile_f={entity['tile_f']} tile_y={entity['tile_y']} "
          f"tile_x={entity['tile_x']}")
    print(f"    unroll={entity['auto_unroll_max_step']} "
          f"explicit={entity['unroll_explicit']}")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--budget", type=int, default=224)
    args = parser.parse_args()
    # a grouped convolution (4 groups) not present in any zoo model
    workload = Conv2DWorkload(
        batch=1,
        in_channels=128,
        out_channels=128,
        height=28,
        width=28,
        kernel_h=3,
        kernel_w=3,
        pad_h=1,
        pad_w=1,
        groups=4,
    )
    print(f"custom workload: {workload}")
    print(f"arithmetic intensity differs per target; "
          f"optimal schedules should too:\n")
    for device in (GTX_1080_TI, JETSON_TX2):
        tune_on(device, workload, args.budget)
    print("\nNote how the smaller device prefers smaller tiles / fewer "
          "threads per block.")


if __name__ == "__main__":
    main()
