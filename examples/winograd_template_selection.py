#!/usr/bin/env python
"""Tune direct vs Winograd templates and let the compiler pick.

TVM ships several schedule templates per operator; for unit-stride 3x3
convolutions the Winograd F(2x2, 3x3) transform trades 2.25x fewer
multiplies for extra memory traffic.  This example tunes both templates
for each eligible ResNet-18 convolution and shows which template the
deployment compiler selects per kernel.

Run:  python examples/winograd_template_selection.py [--budget N]
"""

import argparse
from collections import defaultdict

from repro import build_model
from repro.pipeline.compiler import DeploymentCompiler


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--budget", type=int, default=128)
    parser.add_argument("--model", default="resnet-18")
    args = parser.parse_args()

    graph = build_model(args.model)
    compiler = DeploymentCompiler(graph, env_seed=2021, include_winograd=True)
    direct = [t for t in compiler.tasks if t.template == "direct"]
    wino = [t for t in compiler.tasks if t.template == "winograd"]
    print(f"{args.model}: {len(direct)} direct tasks, "
          f"{len(wino)} also tunable with Winograd\n")

    best = defaultdict(dict)

    def progress(spec, result):
        best[spec.workload][spec.template] = result.best_gflops
        print(f"  T{spec.task_id + 1:<3d} {spec.template:<9s} "
              f"{result.best_gflops:9.1f} GFLOPS")

    compiled = compiler.tune(
        "autotvm", n_trial=args.budget, early_stopping=None,
        progress=progress,
    )

    print("\nper-workload template choice:")
    for workload, scores in best.items():
        if "winograd" not in scores:
            continue
        winner = max(scores, key=scores.get)
        ratio = scores["winograd"] / scores["direct"]
        print(f"  {workload.out_channels:4d}ch {workload.height:3d}px: "
              f"winograd/direct = {ratio:5.2f}x -> deploy {winner}")

    sample = compiled.measure_latency(num_runs=300, seed=1)
    print(f"\nend-to-end with per-kernel template selection: "
          f"{sample.mean_ms:.4f} ms")


if __name__ == "__main__":
    main()
