#!/usr/bin/env python
"""Swap the evaluation function under the advanced framework.

Sec. IV of the paper: "our framework is independent of the specific
forms of evaluation functions, thus making it compatible with various
algorithms."  This example tunes the same convolution with three
different evaluation functions inside the bootstrap ensemble:

* gradient-boosted trees (the default, XGBoost-style),
* a numpy MLP regressor (the 'deep learning algorithms' the paper
  anticipates integrating),
* a pairwise-rank gradient-boosted model (AutoTVM's rank objective),

all through the same `model_factory` hook — no framework changes.

Run:  python examples/alternative_evaluation_functions.py
"""

import argparse

from repro import BaoSettings, SimulatedTask
from repro.core.tuners.btedbao import BTEDBAOTuner
from repro.learning.mlp import MlpRegressor
from repro.learning.rank import RankGradientBoostedTrees
from repro.nn.workloads import Conv2DWorkload


def tune_with(task, name, factory, budget):
    tuner = BTEDBAOTuner(
        task,
        seed=13,
        bao_settings=BaoSettings(neighborhood_size=256),
        model_factory=factory,
    )
    result = tuner.tune(n_trial=budget, early_stopping=None)
    print(f"  {name:<22s} best {result.best_gflops:8.1f} GFLOPS "
          f"({result.num_measurements} measurements)")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--budget", type=int, default=192)
    args = parser.parse_args()
    workload = Conv2DWorkload(
        batch=1, in_channels=128, out_channels=128, height=28, width=28,
        kernel_h=3, kernel_w=3, pad_h=1, pad_w=1,
    )
    task = SimulatedTask(workload, seed=2021)
    print(f"workload: {workload}")
    print(f"space: {len(task.space):,} configurations\n")

    print("BTED+BAO with different evaluation functions:")
    tune_with(task, "boosted trees (default)", None, args.budget)
    tune_with(
        task,
        "MLP regressor",
        lambda: MlpRegressor(hidden_layers=(32, 16), epochs=30, seed=1),
        args.budget,
    )
    tune_with(
        task,
        "rank-objective GBT",
        lambda: RankGradientBoostedTrees(n_estimators=30, seed=1),
        args.budget,
    )


if __name__ == "__main__":
    main()
