#!/usr/bin/env python
"""Transfer learning across tuning tasks (the AutoTVM history mechanism).

Tunes several related ResNet-18 convolution tasks in sequence, pushing
each finished task's measurements into a shared
:class:`~repro.learning.transfer.TransferHistory`.  Later tasks warm-
start their cost model with the history and typically reach a good
configuration in fewer measurements than a cold-started tuner.

Run:  python examples/transfer_learning_demo.py
"""

import argparse

from repro import build_model
from repro.core.tuners.autotvm import AutoTVMTuner
from repro.learning.transfer import TransferHistory
from repro.pipeline.tasks import extract_tasks


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--budget", type=int, default=192)
    parser.add_argument("--tasks", type=int, default=4)
    args = parser.parse_args()
    graph = build_model("resnet-18")
    specs = [
        s for s in extract_tasks(graph) if s.workload.kind == "conv2d"
    ][: args.tasks]
    budget = args.budget

    print("cold-started tuners:")
    cold_best = []
    for spec in specs:
        task = spec.to_simulated(seed=2021)
        tuner = AutoTVMTuner(task, seed=11)
        result = tuner.tune(n_trial=budget, early_stopping=None)
        cold_best.append(result.best_gflops)
        print(f"  T{spec.task_id + 1}: {result.best_gflops:8.1f} GFLOPS")

    print()
    print("with transfer history (same budget):")
    history = TransferHistory(history_weight=0.25)
    warm_best = []
    for spec in specs:
        task = spec.to_simulated(seed=2021)
        tuner = AutoTVMTuner(task, seed=11, transfer=history)
        result = tuner.tune(n_trial=budget, early_stopping=None)
        warm_best.append(result.best_gflops)
        tuner.export_history()
        print(
            f"  T{spec.task_id + 1}: {result.best_gflops:8.1f} GFLOPS "
            f"(history: {history.num_samples} samples "
            f"from {len(history)} tasks)"
        )

    print()
    later_cold = sum(cold_best[1:])
    later_warm = sum(warm_best[1:])
    gain = 100.0 * (later_warm - later_cold) / later_cold
    print(f"aggregate GFLOPS on tasks 2..{len(specs)}: "
          f"cold {later_cold:.1f} vs warm {later_warm:.1f} ({gain:+.1f}%)")


if __name__ == "__main__":
    main()
