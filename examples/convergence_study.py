#!/usr/bin/env python
"""Convergence study on the first MobileNet-v1 layers (paper Fig. 4).

Runs AutoTVM, BTED and BTED+BAO on the first two tuning tasks of
MobileNet-v1 with a fixed measurement budget and prints the best-so-far
GFLOPS at checkpoints, plus simple ASCII sparklines of the curves.

Run:  python examples/convergence_study.py [--budget N] [--trials N]
"""

import argparse

import numpy as np

from repro.experiments import run_fig4
from repro.experiments.settings import ExperimentSettings


def sparkline(curve: np.ndarray, width: int = 48) -> str:
    """Down-sample a curve into a unicode block sparkline."""
    blocks = " ▁▂▃▄▅▆▇█"
    idx = np.linspace(0, len(curve) - 1, width).astype(int)
    values = curve[idx]
    lo, hi = float(values.min()), float(values.max())
    span = (hi - lo) or 1.0
    return "".join(
        blocks[int((v - lo) / span * (len(blocks) - 1))] for v in values
    )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--budget", type=int, default=384)
    parser.add_argument("--trials", type=int, default=2)
    parser.add_argument("--layers", type=int, default=2)
    args = parser.parse_args()

    settings = ExperimentSettings().scaled(0.25)
    result = run_fig4(
        num_layers=args.layers,
        settings=settings,
        num_measurements=args.budget,
        num_trials=args.trials,
    )
    checkpoints = [c for c in (64, 128, 256, 512, 1024) if c <= args.budget]
    print(result.report(checkpoints=checkpoints))
    print()
    for (layer, arm), curve in sorted(result.curves.items()):
        print(f"T{layer + 1} {arm:>9s} |{sparkline(curve)}| "
              f"{curve[-1]:8.1f} GFLOPS")


if __name__ == "__main__":
    main()
