"""Regenerates Table I: end-to-end latency and variance, five models.

Paper's shape: averaged over the models, BTED reduces latency and
variance vs AutoTVM, and BTED+BAO reduces them further (paper averages:
-9.79%/-27.85% for BTED, -13.83%/-67.74% for BTED+BAO; maxima -28.08%
latency and -92.74% variance on MobileNet-v1).
"""

import os

from benchmarks.conftest import save_result
from repro.experiments.table1 import run_table1
from repro.nn.zoo import PAPER_MODELS


def test_table1_end_to_end(benchmark, settings, results_dir):
    models = os.environ.get("REPRO_TABLE1_MODELS", ",".join(PAPER_MODELS))
    model_list = tuple(m for m in models.split(",") if m)
    # the full grid is 62 tasks x 3 arms; default to one trial per cell
    # (the Average row already aggregates 5 models) — raise via env for
    # higher-fidelity runs
    num_trials = int(
        os.environ.get("REPRO_TABLE1_TRIALS", "1")
    )

    def run():
        return run_table1(
            models=model_list,
            arms=("autotvm", "bted", "bted+bao"),
            settings=settings,
            num_trials=num_trials,
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    save_result(results_dir, "table1_end_to_end", result.report())

    base_lat, base_var = result.average_row("autotvm")
    for arm in ("bted", "bted+bao"):
        lat, var = result.average_row(arm)
        benchmark.extra_info[f"avg_latency_delta/{arm}"] = (
            100.0 * (lat - base_lat) / base_lat
        )
        benchmark.extra_info[f"avg_variance_delta/{arm}"] = (
            100.0 * (var - base_var) / base_var
        )

    # Table I shape.  BTED reproduces robustly at every scale: it must
    # cut the average variance without losing latency.
    bted_lat, bted_var = result.average_row("bted")
    assert bted_var < base_var
    assert bted_lat <= 1.02 * base_lat
    # The full framework's end-to-end margin is smaller than the
    # trial-to-trial noise of a single scaled run (see EXPERIMENTS.md),
    # so its strict direction is asserted only when trials are averaged.
    bao_lat, bao_var = result.average_row("bted+bao")
    if num_trials >= 2:
        assert bao_lat <= 1.02 * base_lat
        assert bao_var <= base_var
    else:
        assert bao_lat <= 1.08 * base_lat
