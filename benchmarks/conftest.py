"""Benchmark configuration.

Every benchmark regenerates one table/figure of the paper (or an
ablation) and writes the rendered result to ``benchmarks/results/`` so
the artifacts survive pytest's output capture.

Scale: the full Sec. V-A protocol (2048-trial budgets, early stop 400,
10 trials, 5 models) takes hours; benchmarks default to a reduced
protocol that preserves the paper's *shape* and finishes in minutes.
Set the ``REPRO_BENCH_SCALE`` environment variable (0 < scale <= 1,
default 0.1) to trade time for fidelity — 1.0 reproduces the paper's
exact budgets.
"""

import os
from pathlib import Path

import pytest

from repro.experiments.settings import ExperimentSettings

RESULTS_DIR = Path(__file__).parent / "results"


def bench_scale() -> float:
    return float(os.environ.get("REPRO_BENCH_SCALE", "0.1"))


@pytest.fixture(scope="session")
def settings() -> ExperimentSettings:
    """The evaluation protocol at the configured benchmark scale."""
    return ExperimentSettings().scaled(bench_scale())


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def save_result(results_dir: Path, name: str, text: str) -> None:
    """Persist a rendered table/figure and echo it for -s runs."""
    path = results_dir / f"{name}.txt"
    path.write_text(text + "\n", encoding="utf-8")
    print(f"\n{text}\n[saved to {path}]")
