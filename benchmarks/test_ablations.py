"""Ablation benchmarks for the design choices DESIGN.md calls out.

Not experiments from the paper — these quantify the contribution of
each framework component on the first MobileNet-v1 task:

* BTED batch count ``B`` (diversity vs compute);
* bootstrap ensemble size ``Gamma``;
* BAO radius policy (adaptive vs fixed vs compounding);
* BAO neighborhood metric (feature-space vs knob-index).
"""

from dataclasses import replace

import numpy as np

from benchmarks.conftest import save_result
from repro.experiments.ablation import (
    adaptive_radius_ablation,
    bted_batch_sweep,
    gamma_sweep,
    init_diversity_comparison,
)
from repro.experiments.runner import format_table, run_arm_on_task
from repro.nn.zoo import build_model
from repro.pipeline.tasks import extract_tasks


def first_mobilenet_task(settings):
    spec = extract_tasks(build_model("mobilenet-v1"))[0]
    return spec.to_simulated(seed=settings.env_seed)


def test_ablation_bted_batches(benchmark, settings, results_dir):
    task = first_mobilenet_task(settings)

    def run():
        sweep = bted_batch_sweep(
            task,
            batch_counts=(1, 5, 10),
            m=settings.init_size,
            batch_candidates=settings.batch_candidates,
            seed=settings.env_seed,
        )
        baseline = init_diversity_comparison(
            task, m=settings.init_size, seed=settings.env_seed
        )
        return sweep, baseline

    sweep, baseline = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = [
        ["random", f"{baseline['random'].min_distance:.3f}",
         f"{baseline['random'].mean_nearest_neighbor:.3f}"]
    ]
    for b, stats in sorted(sweep.items()):
        rows.append(
            [f"BTED B={b}", f"{stats.min_distance:.3f}",
             f"{stats.mean_nearest_neighbor:.3f}"]
        )
    text = "Ablation — BTED batch count vs init diversity\n" + format_table(
        ["init", "min dist", "mean NN dist"], rows
    )
    save_result(results_dir, "ablation_bted_batches", text)

    # BTED (any B) must beat random init on dispersion
    for stats in sweep.values():
        assert stats.mean_nearest_neighbor > (
            baseline["random"].mean_nearest_neighbor
        )


def test_ablation_gamma(benchmark, settings, results_dir):
    task = first_mobilenet_task(settings)

    def run():
        return gamma_sweep(
            task, settings, gammas=(1, 2, 4),
            num_trials=settings.num_trials,
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [[f"Gamma={g}", f"{v:.1f}"] for g, v in sorted(result.items())]
    text = "Ablation — bootstrap ensemble size\n" + format_table(
        ["setting", "best GFLOPS"], rows
    )
    save_result(results_dir, "ablation_gamma", text)
    assert all(v > 0 for v in result.values())


def test_ablation_radius_policy(benchmark, settings, results_dir):
    task = first_mobilenet_task(settings)

    def run():
        return adaptive_radius_ablation(
            task, settings, num_trials=settings.num_trials
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [[name, f"{v:.1f}"] for name, v in sorted(result.items())]
    text = "Ablation — BAO radius policy\n" + format_table(
        ["policy", "best GFLOPS"], rows
    )
    save_result(results_dir, "ablation_radius_policy", text)
    assert all(v > 0 for v in result.values())


def test_ablation_neighborhood_metric(benchmark, settings, results_dir):
    """Feature-space neighborhoods vs knob-index neighborhoods.

    The paper says 'Euclidean distance between points' without fixing
    the embedding; this ablation shows the feature-space reading is the
    one under which BAO's local-smoothness assumption holds.
    """
    task = first_mobilenet_task(settings)

    def run():
        out = {}
        for metric in ("feature", "index"):
            metric_settings = replace(
                settings, bao=replace(settings.bao, metric=metric)
            )
            bests = [
                run_arm_on_task(
                    "bted+bao", task, metric_settings, trial=t
                ).best_gflops
                for t in range(settings.num_trials)
            ]
            out[metric] = float(np.mean(bests))
        return out

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [[m, f"{v:.1f}"] for m, v in sorted(result.items())]
    text = "Ablation — BAO neighborhood metric\n" + format_table(
        ["metric", "best GFLOPS"], rows
    )
    save_result(results_dir, "ablation_neighborhood_metric", text)
    benchmark.extra_info.update(result)
    assert result["feature"] > 0 and result["index"] > 0
