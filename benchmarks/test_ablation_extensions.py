"""Ablation benchmarks for the framework extensions.

* batch-mode BAO (top-k proposals per ensemble refit) — quality vs
  parallel-measurement batch size;
* acquisition function (Alg. 3 sum vs uncertainty-aware UCB);
* evaluation-function family (GBT vs MLP under the bootstrap ensemble,
  backing the paper's Sec. IV generality claim).
"""

from dataclasses import replace

import numpy as np

from benchmarks.conftest import save_result
from repro.core.bao import BaoSettings
from repro.core.tuners.btedbao import BTEDBAOTuner
from repro.experiments.runner import format_table
from repro.learning.mlp import MlpRegressor
from repro.nn.zoo import build_model
from repro.pipeline.tasks import extract_tasks
from repro.utils.rng import derive_seed


def first_mobilenet_task(settings):
    spec = extract_tasks(build_model("mobilenet-v1"))[0]
    return spec.to_simulated(seed=settings.env_seed)


def _run_bao(task, settings, trial, tag, **tuner_kwargs):
    seed = derive_seed(settings.env_seed, "ext", trial, tag)
    tuner = BTEDBAOTuner(
        task,
        seed=seed,
        init_size=settings.init_size,
        mu=settings.mu,
        batch_candidates=settings.batch_candidates,
        num_batches=settings.num_batches,
        **tuner_kwargs,
    )
    return tuner.tune(
        n_trial=settings.n_trial, early_stopping=settings.early_stopping
    ).best_gflops


def test_ablation_bao_batch_size(benchmark, settings, results_dir):
    task = first_mobilenet_task(settings)

    def run():
        out = {}
        for k in (1, 4, 16):
            bests = [
                _run_bao(task, settings, trial, f"batch-{k}",
                         measure_batch_size=k, bao_settings=settings.bao)
                for trial in range(settings.num_trials)
            ]
            out[k] = float(np.mean(bests))
        return out

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [[f"k={k}", f"{v:.1f}"] for k, v in sorted(result.items())]
    text = "Ablation — BAO parallel-measurement batch size\n" + format_table(
        ["batch", "best GFLOPS"], rows
    )
    save_result(results_dir, "ablation_bao_batch_size", text)
    assert all(v > 0 for v in result.values())


def test_ablation_acquisition(benchmark, settings, results_dir):
    task = first_mobilenet_task(settings)

    def run():
        out = {}
        for name, bao in (
            ("sum", settings.bao),
            ("ucb-k1", replace(settings.bao, acquisition="ucb", kappa=1.0)),
            ("ucb-k4", replace(settings.bao, acquisition="ucb", kappa=4.0)),
        ):
            bests = [
                _run_bao(task, settings, trial, f"acq-{name}", bao_settings=bao)
                for trial in range(settings.num_trials)
            ]
            out[name] = float(np.mean(bests))
        return out

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [[name, f"{v:.1f}"] for name, v in sorted(result.items())]
    text = "Ablation — BAO acquisition function\n" + format_table(
        ["acquisition", "best GFLOPS"], rows
    )
    save_result(results_dir, "ablation_acquisition", text)
    assert all(v > 0 for v in result.values())


def test_ablation_evaluation_function(benchmark, settings, results_dir):
    """GBT vs MLP evaluation functions inside the bootstrap ensemble."""
    task = first_mobilenet_task(settings)

    def mlp_factory():
        return MlpRegressor(hidden_layers=(32, 16), epochs=30, seed=0)

    def run():
        out = {}
        for name, factory in (("gbt", None), ("mlp", mlp_factory)):
            bests = [
                _run_bao(task, settings, trial, f"model-{name}",
                         bao_settings=settings.bao, model_factory=factory)
                for trial in range(max(1, settings.num_trials // 2))
            ]
            out[name] = float(np.mean(bests))
        return out

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [[name, f"{v:.1f}"] for name, v in sorted(result.items())]
    text = (
        "Ablation — evaluation-function family (Sec. IV generality)\n"
        + format_table(["model", "best GFLOPS"], rows)
    )
    save_result(results_dir, "ablation_evaluation_function", text)
    assert all(v > 0 for v in result.values())
