#!/usr/bin/env python
"""Measure the parallel-executor speedup over serial measurement.

Runs the same measurement stream through :class:`SerialExecutor` and
:class:`ParallelExecutor`, verifies the results are bit-identical (the
executor contract), and reports wall-clock speedup.  On a machine with
at least 4 cores the script *asserts* a >= 2x speedup with ``--jobs 4``
(the acceptance bar for the parallel backend); on smaller machines it
only reports, since there is nothing to parallelize onto.

Run:  PYTHONPATH=src python benchmarks/parallel_speedup.py [--jobs 4]
"""

import argparse
import os
import time

from repro.hardware.executor import ParallelExecutor, SerialExecutor
from repro.hardware.measure import Measurer, SimulatedTask
from repro.nn.workloads import Conv2DWorkload

#: speedup bar from the issue: 2x with 4 workers on >= 4 cores
REQUIRED_SPEEDUP = 2.0
REQUIRED_CORES = 4


def _task() -> SimulatedTask:
    """A mid-size conv task (large enough space for distinct configs)."""
    workload = Conv2DWorkload(
        batch=1,
        in_channels=32,
        out_channels=64,
        height=28,
        width=28,
        kernel_h=3,
        kernel_w=3,
        pad_h=1,
        pad_w=1,
    )
    return SimulatedTask(workload, seed=0)


def _signature(results):
    """Comparable projection of measurement results."""
    return [(r.config_index, r.gflops, r.mean_time_s) for r in results]


def run(jobs: int, num_configs: int, batch_size: int) -> float:
    """Time serial vs parallel on one stream; returns the speedup."""
    task = _task()
    rng_indices = [
        (i * 7919) % len(task.space) for i in range(num_configs)
    ]
    batches = [
        rng_indices[off: off + batch_size]
        for off in range(0, num_configs, batch_size)
    ]

    serial = SerialExecutor(Measurer(task, seed=3))
    start = time.perf_counter()
    serial_results = [serial.measure_batch(batch) for batch in batches]
    serial_s = time.perf_counter() - start

    parallel = ParallelExecutor(
        Measurer(task, seed=3), jobs=jobs, min_parallel=1
    )
    try:
        parallel._ensure_pool()  # exclude pool start-up from the timing
        start = time.perf_counter()
        parallel_results = [
            parallel.measure_batch(batch) for batch in batches
        ]
        parallel_s = time.perf_counter() - start
    finally:
        parallel.close()

    for s_batch, p_batch in zip(serial_results, parallel_results):
        assert _signature(s_batch) == _signature(p_batch), (
            "parallel results diverged from serial"
        )

    speedup = serial_s / parallel_s if parallel_s > 0 else float("inf")
    print(
        f"{num_configs} configs, batches of {batch_size}: "
        f"serial {serial_s:.2f}s, parallel(jobs={jobs}) {parallel_s:.2f}s "
        f"-> {speedup:.2f}x"
    )
    return speedup


def main() -> int:
    """CLI entry point; returns the process exit code."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--jobs", type=int, default=4)
    parser.add_argument("--configs", type=int, default=2048)
    parser.add_argument("--batch", type=int, default=256)
    args = parser.parse_args()

    cores = os.cpu_count() or 1
    print(f"machine has {cores} core(s)")
    speedup = run(args.jobs, args.configs, args.batch)

    if cores >= REQUIRED_CORES and args.jobs >= REQUIRED_CORES:
        assert speedup >= REQUIRED_SPEEDUP, (
            f"speedup {speedup:.2f}x below the {REQUIRED_SPEEDUP}x bar "
            f"on a {cores}-core machine"
        )
        print(f"PASS: {speedup:.2f}x >= {REQUIRED_SPEEDUP}x")
    else:
        print(
            f"note: < {REQUIRED_CORES} cores (or jobs) — reporting only, "
            f"no speedup assertion"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
