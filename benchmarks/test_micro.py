"""Micro-benchmarks of the framework's hot components.

These track the throughput of the pieces the search loops hammer:
TED selection, BTED initialization, GBT fit/predict, the bootstrap
ensemble step, SA proposal rounds, neighborhood sampling, and the
analytical cost model.
"""

import numpy as np
import pytest

from repro.core.bootstrap import BootstrapEnsemble
from repro.core.bted import bted_select
from repro.core.ted import ted_select
from repro.hardware.measure import Measurer, SimulatedTask
from repro.learning.gbt import GradientBoostedTrees
from repro.learning.sa import simulated_annealing_search
from repro.nn.workloads import Conv2DWorkload
from repro.nn.zoo import build_model
from repro.pipeline.tasks import extract_tasks
from repro.space.neighborhood import sample_neighborhood


@pytest.fixture(scope="module")
def task():
    wl = Conv2DWorkload(1, 32, 64, 56, 56, 3, 3, pad_h=1, pad_w=1)
    return SimulatedTask(wl, seed=0)


def test_ted_select_500x64(benchmark):
    rng = np.random.default_rng(0)
    features = rng.normal(size=(500, 20))
    picked = benchmark(ted_select, features, 64, 0.1)
    assert len(picked) == 64


def test_bted_paper_settings(benchmark, task):
    """Full Alg. 2 with the paper's (M=500, m=64, B=10)."""
    picked = benchmark.pedantic(
        bted_select,
        args=(task.space,),
        kwargs=dict(m=64, batch_candidates=500, num_batches=10, seed=1),
        rounds=3,
        iterations=1,
    )
    assert len(picked) == 64


def test_gbt_fit_512x20(benchmark):
    rng = np.random.default_rng(0)
    X = rng.normal(size=(512, 20))
    y = rng.normal(size=512)
    model = benchmark(
        lambda: GradientBoostedTrees(n_estimators=50, seed=0).fit(X, y)
    )
    assert model.n_trees == 50


def test_gbt_predict_4096(benchmark):
    rng = np.random.default_rng(0)
    X = rng.normal(size=(512, 20))
    y = rng.normal(size=512)
    model = GradientBoostedTrees(n_estimators=50, seed=0).fit(X, y)
    Xq = rng.normal(size=(4096, 20))
    pred = benchmark(model.predict, Xq)
    assert pred.shape == (4096,)


def test_bootstrap_ensemble_step(benchmark, task):
    """One BAO model step: fit Gamma=2 models + score 512 candidates."""
    rng = np.random.default_rng(0)
    indices = task.space.sample(300, seed=0)
    X = task.space.feature_matrix(indices)
    y = np.array([task.true_gflops(int(i)) for i in indices])
    candidates = task.space.feature_matrix(task.space.sample(512, seed=1))

    def step():
        ensemble = BootstrapEnsemble(gamma=2, seed=rng).fit(X, y)
        return ensemble.predict_sum(candidates)

    scores = benchmark(step)
    assert scores.shape == (512,)


def test_sa_proposal_round(benchmark, task):
    rng = np.random.default_rng(0)
    weights = rng.normal(size=task.space.feature_dim)

    def score(indices):
        return task.space.feature_matrix(indices) @ weights

    plan = benchmark.pedantic(
        simulated_annealing_search,
        args=(task.space, score),
        kwargs=dict(plan_size=64, seed=2, n_chains=128, n_steps=120),
        rounds=3,
        iterations=1,
    )
    assert len(plan) == 64


def test_neighborhood_sampling(benchmark, task):
    center = int(task.space.sample(1, seed=3)[0])
    sampled = benchmark(
        sample_neighborhood, task.space, center, 3.0, 512, 4
    )
    assert len(sampled) > 0


def test_cost_model_profile(benchmark, task):
    indices = task.space.sample(256, seed=5)
    entities = [task.space.get(int(i)) for i in indices]

    def profile_all():
        from repro.hardware.resources import ResourceError

        count = 0
        for entity in entities:
            try:
                task.model.profile(task.workload, entity.values)
                count += 1
            except ResourceError:
                pass
        return count

    count = benchmark(profile_all)
    assert count > 0


def test_measure_batch_64(benchmark, task):
    measurer = Measurer(task, seed=0)
    indices = task.space.sample(64, seed=6)
    results = benchmark(measurer.measure_batch, indices)
    assert len(results) == 64


def test_task_extraction_all_models(benchmark):
    def extract_all():
        return sum(
            len(extract_tasks(build_model(name)))
            for name in ("alexnet", "resnet-18", "mobilenet-v1")
        )

    total = benchmark(extract_all)
    assert total == 5 + 11 + 19


def test_feature_matrix_4096(benchmark, task):
    indices = task.space.sample(4096, seed=7)
    matrix = benchmark(task.space.feature_matrix, indices)
    assert matrix.shape == (4096, task.space.feature_dim)
