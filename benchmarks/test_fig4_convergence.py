"""Regenerates Fig. 4: GFLOPS convergence on MobileNet-v1's first layers.

Paper's shape: BTED converges faster and higher than AutoTVM on the
first layer; BTED+BAO reaches the highest GFLOPS on the second layer.
We assert the directional claims on the averaged curves and record the
checkpointed series.
"""

import numpy as np

from benchmarks.conftest import bench_scale, save_result
from repro.experiments.fig4 import run_fig4


def test_fig4_convergence(benchmark, settings, results_dir):
    num_measurements = max(128, int(1024 * bench_scale() * 2))
    num_trials = max(2, settings.num_trials)

    def run():
        return run_fig4(
            model_name="mobilenet-v1",
            num_layers=2,
            arms=("autotvm", "bted", "bted+bao"),
            settings=settings,
            num_measurements=num_measurements,
            num_trials=num_trials,
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)

    checkpoints = [
        c for c in (64, 128, 256, 512, 1024) if c <= num_measurements
    ]
    save_result(results_dir, "fig4_convergence", result.report(checkpoints))

    benchmark.extra_info["num_measurements"] = num_measurements
    for (layer, arm), curve in result.curves.items():
        benchmark.extra_info[f"T{layer + 1}/{arm}@final"] = float(curve[-1])

    # shape assertions: curves are monotone; the advanced arms end at
    # least in the baseline's neighborhood on both layers
    for curve in result.curves.values():
        assert (np.diff(curve) >= -1e-9).all()
    for layer in (0, 1):
        base = result.final_gflops(layer, "autotvm")
        assert result.final_gflops(layer, "bted") > 0.9 * base
        assert result.final_gflops(layer, "bted+bao") > 0.9 * base
