"""Template-crossover study: direct vs Winograd across layer depths.

Not a paper figure — a substrate-validation benchmark.  Real GPUs show
a characteristic crossover: Winograd F(2x2, 3x3) loses on early layers
(large spatial extent, few channels — memory-bound, transform overhead
dominates) and wins on deep layers (many channels — compute-bound,
2.25x multiply reduction pays).  The simulator must reproduce that
shape for template selection to be meaningful.
"""

import numpy as np

from benchmarks.conftest import save_result
from repro.core import make_tuner
from repro.experiments.runner import format_table
from repro.hardware.measure import SimulatedTask
from repro.nn.workloads import Conv2DWorkload
from repro.utils.rng import derive_seed

#: ResNet-ish 3x3 stages from shallow to deep
STAGES = [
    (64, 56),
    (128, 28),
    (256, 14),
    (512, 7),
]


def test_winograd_crossover(benchmark, settings, results_dir):
    def run():
        rows = {}
        for channels, size in STAGES:
            wl = Conv2DWorkload(
                1, channels, channels, size, size, 3, 3, pad_h=1, pad_w=1
            )
            best = {}
            for template in ("direct", "winograd"):
                task = SimulatedTask(
                    wl, seed=settings.env_seed, template=template
                )
                tuner = make_tuner(
                    "autotvm",
                    task,
                    seed=derive_seed(settings.env_seed, "xover", template,
                                     channels),
                )
                result = tuner.tune(
                    n_trial=settings.n_trial,
                    early_stopping=settings.early_stopping,
                )
                best[template] = result.best_gflops
            rows[(channels, size)] = best
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)

    table_rows = []
    ratios = []
    for (channels, size), best in rows.items():
        ratio = best["winograd"] / best["direct"]
        ratios.append(ratio)
        table_rows.append(
            [
                f"{channels}ch {size}px",
                f"{best['direct']:.0f}",
                f"{best['winograd']:.0f}",
                f"{ratio:.2f}x",
            ]
        )
    text = (
        "Template crossover — direct vs Winograd (tuned, GFLOPS)\n"
        + format_table(
            ["layer", "direct", "winograd", "wino/direct"], table_rows
        )
    )
    save_result(results_dir, "winograd_crossover", text)

    # shape: the advantage of Winograd must grow with depth, and there
    # must be an actual crossover across the sweep
    assert ratios[-1] > ratios[0]
    assert max(ratios) > 1.0
    assert min(ratios) < 1.1
