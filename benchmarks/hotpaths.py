#!/usr/bin/env python
"""Hot-path microbenchmarks and the perf-regression harness.

Times the tuning loop's Python-side hot paths — tree prediction, TED /
BTED selection, bootstrap-ensemble fit/predict, and a full BTED+BAO
tuning step — against the preserved pre-optimization reference
implementations (``RegressionTree.predict_reference``,
``ted_select(method="exact")``), and writes the numbers to a JSON
artifact (``BENCH_hotpaths.json`` at the repo root by default).

Three gates are built in:

* **speedup floor** — the vectorized tree predict and the incremental
  TED path must each beat their reference by ``--min-speedup`` (3x by
  default, the PR acceptance bar); disable with ``--no-assert``.
* **regression check** — ``--check BASELINE.json`` compares each
  benchmark's ``wall_s`` against a committed baseline and fails when
  any hot path slowed down by more than ``--threshold`` (2x default).
* **observability overhead** — ``--max-obs-overhead FRAC`` fails when
  attaching a ``TuningObserver`` slows a full tuning run by more than
  ``FRAC`` (CI passes 0.03); omitted, the overhead is report-only.

Run:  PYTHONPATH=src python benchmarks/hotpaths.py --arm bted_bao
"""

import argparse
import json
import os
import platform
import sys
import time

import numpy as np

from repro.core.bao import BaoSettings
from repro.core.bootstrap import BootstrapEnsemble
from repro.core.bted import bted_select
from repro.core.events import BatchMeasured, BatchProposed, EventLog
from repro.core.ted import ted_select
from repro.core.tuners.btedbao import BTEDBAOTuner
from repro.hardware.measure import SimulatedTask
from repro.learning.tree import BinnedRegressionTree, RegressionTree, bin_features
from repro.nn.workloads import Conv2DWorkload

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
DEFAULT_OUT = os.path.join(REPO_ROOT, "BENCH_hotpaths.json")


def _best_of(fn, repeats):
    """Run ``fn`` ``repeats`` times; return (best wall seconds, last result)."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def _task():
    """A mid-size conv task (the Fig. 4-style workload family)."""
    workload = Conv2DWorkload(
        batch=1, in_channels=32, out_channels=64, height=28, width=28,
        kernel_h=3, kernel_w=3, pad_h=1, pad_w=1,
    )
    return SimulatedTask(workload, seed=0)


def bench_tree_predict(repeats, scale):
    """Vectorized exact-tree predict vs the per-node reference loop."""
    rng = np.random.default_rng(0)
    n_train, n_test = int(1200 * scale), int(4000 * scale)
    X = rng.random((max(n_train, 16), 14))
    y = rng.random(len(X))
    X_test = rng.random((max(n_test, 16), 14))
    tree = RegressionTree(max_depth=8, min_samples_leaf=2, seed=0).fit(X, y)

    fast_s, fast = _best_of(lambda: tree.predict(X_test), repeats)
    ref_s, ref = _best_of(lambda: tree.predict_reference(X_test), repeats)
    assert np.array_equal(fast, ref), "vectorized predict diverged"
    return {
        "wall_s": fast_s,
        "reference_s": ref_s,
        "speedup": ref_s / fast_s if fast_s > 0 else float("inf"),
        "rows": len(X_test),
        "nodes": tree.node_count,
    }


def bench_binned_predict(repeats, scale):
    """Histogram-tree fit + predict (the BAO ensemble's default learner)."""
    rng = np.random.default_rng(1)
    n = int(2000 * scale)
    X = rng.random((max(n, 32), 16))
    y = rng.random(len(X))
    codes, _ = bin_features(X, n_bins=16)
    tree = BinnedRegressionTree(n_bins=16, max_depth=6)

    fit_s, _ = _best_of(lambda: tree.fit(codes, y), repeats)
    predict_s, _ = _best_of(lambda: tree.predict(codes), repeats)
    return {"wall_s": fit_s + predict_s, "fit_s": fit_s, "predict_s": predict_s}


def bench_ted(repeats, scale):
    """Incremental TED (``method='fast'``) vs the exact reference loop."""
    rng = np.random.default_rng(2)
    n = int(1600 * scale)
    features = rng.random((max(n, 64), 12))
    m = 64

    fast_s, fast = _best_of(
        lambda: ted_select(features, m=m, mu=0.1, method="fast"), repeats
    )
    ref_s, ref = _best_of(
        lambda: ted_select(features, m=m, mu=0.1, method="exact"), repeats
    )
    return {
        "wall_s": fast_s,
        "reference_s": ref_s,
        "speedup": ref_s / fast_s if fast_s > 0 else float("inf"),
        "n": len(features),
        "m": m,
        "selection_matches_exact": list(fast) == list(ref),
    }


def bench_bted(repeats, scale):
    """Full BTED (Alg. 2) over a real config space, both TED back-ends."""
    space = _task().space
    kwargs = dict(
        m=32, batch_candidates=max(int(200 * scale), 48), num_batches=4,
        seed=7,
    )
    fast_s, fast = _best_of(
        lambda: bted_select(space, ted_method="fast", **kwargs), repeats
    )
    exact_s, exact = _best_of(
        lambda: bted_select(space, ted_method="exact", **kwargs), repeats
    )
    return {
        "wall_s": fast_s,
        "reference_s": exact_s,
        "speedup": exact_s / fast_s if fast_s > 0 else float("inf"),
        "selection_matches_exact": list(fast) == list(exact),
    }


def bench_ensemble(repeats, scale):
    """Bootstrap-ensemble refit + neighborhood scoring (one BAO step's cost)."""
    rng = np.random.default_rng(3)
    n, d, candidates = int(320 * scale), 16, int(512 * scale)
    X = rng.random((max(n, 32), d))
    y = rng.random(len(X))
    C = rng.random((max(candidates, 32), d))

    ensemble = BootstrapEnsemble(gamma=2, seed=5)
    fit_s, _ = _best_of(lambda: ensemble.fit(X, y), repeats)
    predict_s, _ = _best_of(lambda: ensemble.predict_sum(C), repeats)

    shared = BootstrapEnsemble(gamma=2, seed=5, share_bin_edges=True)
    shared_fit_s, _ = _best_of(lambda: shared.fit(X, y), repeats)
    return {
        "wall_s": fit_s + predict_s,
        "fit_s": fit_s,
        "predict_s": predict_s,
        "shared_bin_edges_fit_s": shared_fit_s,
    }


def bench_arm(arm, repeats, scale):
    """A full tuning run of the default-config BAO arm, phase-resolved."""
    if arm != "bted_bao":
        raise ValueError(f"unknown arm {arm!r}")

    def run():
        log = EventLog()
        tuner = BTEDBAOTuner(
            _task(),
            seed=11,
            init_size=16,
            batch_candidates=max(int(100 * scale), 32),
            num_batches=2,
            bao_settings=BaoSettings(neighborhood_size=256),
        )
        tuner.tune(n_trial=28, early_stopping=None, on_event=[log])
        return log

    wall_s, log = _best_of(run, max(1, repeats // 2))
    proposal_s = sum(e.proposal_s for e in log.of_type(BatchProposed))
    measure_s = sum(e.measure_s for e in log.of_type(BatchMeasured))
    steps = len(log.of_type(BatchProposed))
    return {
        "wall_s": wall_s,
        "proposal_s": proposal_s,
        "measure_s": measure_s,
        "steps": steps,
        "proposal_s_per_step": proposal_s / steps if steps else 0.0,
    }


def bench_obs_overhead(repeats, scale):
    """Full-arm wall time with a TuningObserver attached vs without.

    The observer drives metrics, spans, and the hook bus, so this is
    the end-to-end cost of the observability layer on a real run.
    ``obs_overhead`` is the fractional slowdown (0.02 = 2%).
    """
    from repro.obs import TuningObserver

    def run(observe):
        tuner = BTEDBAOTuner(
            _task(),
            seed=11,
            init_size=16,
            batch_candidates=max(int(100 * scale), 32),
            num_batches=2,
            bao_settings=BaoSettings(neighborhood_size=256),
        )
        sinks = [TuningObserver()] if observe else []
        tuner.tune(n_trial=28, early_stopping=None, on_event=sinks)

    reps = max(3, repeats)
    base_s, _ = _best_of(lambda: run(False), reps)
    obs_s, _ = _best_of(lambda: run(True), reps)
    overhead = obs_s / base_s - 1.0 if base_s > 0 else 0.0
    return {
        "wall_s": obs_s,
        "baseline_s": base_s,
        "obs_overhead": overhead,
    }


def run_suite(arm, repeats, scale):
    """Run every benchmark; returns the result document."""
    benchmarks = {}
    for name, fn in (
        ("tree_predict", bench_tree_predict),
        ("binned_predict", bench_binned_predict),
        ("ted", bench_ted),
        ("bted", bench_bted),
        ("ensemble", bench_ensemble),
        ("obs_overhead", bench_obs_overhead),
    ):
        benchmarks[name] = fn(repeats, scale)
        print(f"{name}: {json.dumps(benchmarks[name])}")
    if arm != "none":
        key = f"arm_{arm}"
        benchmarks[key] = bench_arm(arm, repeats, scale)
        print(f"{key}: {json.dumps(benchmarks[key])}")
    return {
        "meta": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "cpu_count": os.cpu_count(),
            "repeats": repeats,
            "scale": scale,
            "arm": arm,
        },
        "benchmarks": benchmarks,
    }


def check_regression(current, baseline_path, threshold):
    """Compare ``wall_s`` per benchmark against a baseline; list offenders."""
    with open(baseline_path, "r", encoding="utf-8") as handle:
        baseline = json.load(handle)
    base_cpu = baseline.get("meta", {}).get("cpu_count")
    cur_cpu = current["meta"]["cpu_count"]
    if base_cpu is not None and base_cpu != cur_cpu:
        print(
            f"WARNING: baseline {baseline_path} was recorded with "
            f"cpu_count={base_cpu} but this host has cpu_count={cur_cpu}; "
            "cross-host wall-clock ratios are indicative only"
        )
    offenders = []
    for name, entry in current["benchmarks"].items():
        base = baseline.get("benchmarks", {}).get(name)
        if base is None or "wall_s" not in base or "wall_s" not in entry:
            continue
        ratio = entry["wall_s"] / base["wall_s"] if base["wall_s"] > 0 else 1.0
        status = "OK" if ratio <= threshold else "REGRESSION"
        print(
            f"check {name}: {entry['wall_s']:.4f}s vs baseline "
            f"{base['wall_s']:.4f}s ({ratio:.2f}x) {status}"
        )
        if ratio > threshold:
            offenders.append((name, ratio))
    return offenders


def main():
    """CLI entry point; returns the process exit code."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--arm", default="bted_bao", choices=("bted_bao", "none"),
        help="which full tuning arm to time ('none' skips it)",
    )
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument(
        "--scale", type=float, default=1.0,
        help="problem-size multiplier for quick local runs",
    )
    parser.add_argument("--out", default=DEFAULT_OUT)
    parser.add_argument(
        "--check", default=None, metavar="BASELINE",
        help="baseline JSON to compare against (fail on slowdown)",
    )
    parser.add_argument(
        "--threshold", type=float, default=2.0,
        help="max tolerated wall_s ratio vs the baseline",
    )
    parser.add_argument(
        "--min-speedup", type=float, default=3.0,
        help="required tree-predict and TED speedup vs reference paths",
    )
    parser.add_argument(
        "--no-assert", action="store_true",
        help="report speedups without enforcing --min-speedup",
    )
    parser.add_argument(
        "--max-obs-overhead", type=float, default=None, metavar="FRAC",
        help="fail when the observability layer slows a full tuning "
             "run by more than this fraction (e.g. 0.03 = 3%%); "
             "default: report only",
    )
    args = parser.parse_args()

    results = run_suite(args.arm, args.repeats, args.scale)

    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(results, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {args.out}")

    code = 0
    if not args.no_assert:
        for name in ("tree_predict", "ted"):
            speedup = results["benchmarks"][name]["speedup"]
            if speedup < args.min_speedup:
                print(
                    f"FAIL: {name} speedup {speedup:.2f}x is below the "
                    f"{args.min_speedup:.1f}x bar"
                )
                code = 1
            else:
                print(f"PASS: {name} speedup {speedup:.2f}x")

    if args.max_obs_overhead is not None:
        overhead = results["benchmarks"]["obs_overhead"]["obs_overhead"]
        if overhead > args.max_obs_overhead:
            print(
                f"FAIL: observability overhead {overhead:.2%} exceeds "
                f"the {args.max_obs_overhead:.2%} bar"
            )
            code = 1
        else:
            print(f"PASS: observability overhead {overhead:.2%}")

    if args.check is not None:
        offenders = check_regression(results, args.check, args.threshold)
        if offenders:
            print(f"FAIL: perf regressions: {offenders}")
            code = 1
        else:
            print("PASS: no perf regression vs baseline")
    return code


if __name__ == "__main__":
    sys.exit(main())
