#!/usr/bin/env python
"""End-to-end steps-per-second benchmark for the pipelined tuning loop.

Times a full ``arm_bted_bao`` tuning run twice over the same budget and
reports measurements per wall-second (steps/sec):

* **serial** — the default configuration: ``pipeline=False`` with
  from-scratch ensemble refits (``refit="full"``);
* **pipelined** — ``pipeline=True`` (speculative proposal of batch
  ``k+1`` overlapped with the measurement of batch ``k``) combined with
  warm-started refits (``refit="incremental"``).

Because the simulated device answers in microseconds, measurement
latency is emulated: :class:`HardwareEmulator` sleeps a fixed
``--latency-ms`` per deployed configuration (real boards take tens of
milliseconds to seconds per config), while the pickled clone used by
the speculation thread predicts for free — exactly the asymmetry the
pipeline exploits on hardware.  The sleep never touches results, so the
measurement stream stays bit-identical to the plain measurer's.

The cost model uses ``--rounds`` boosting rounds per ensemble member
(48 by default — production cost models run far more rounds than the
repo's test-size default of 24); both modes share the same factory, so
the comparison is apples to apples.

Gates:

* **speedup floor** — the pipelined mode must reach ``--min-speedup``
  times the serial steps/sec (2x by default, the PR acceptance bar; CI
  gates at 1.5x to absorb runner noise); disable with ``--no-assert``.
* **conformance** — unless ``--no-verify``, a third run (serial but
  incremental) must reproduce the pipelined run's record stream bit
  for bit, pinning the speculate-validate-or-replay contract inside
  the benchmark itself.
* **regression check** — ``--check BASELINE.json`` fails when the
  pipelined steps/sec fell below ``baseline / --threshold``.

Run:  PYTHONPATH=src python benchmarks/steps_per_second.py
"""

import argparse
import json
import os
import platform
import sys
import time

import numpy as np

from repro.core.bao import BaoSettings
from repro.core.events import EventLog, SpeculationResolved
from repro.core.tuners.btedbao import BTEDBAOTuner
from repro.hardware.measure import Measurer, SimulatedTask
from repro.learning.gbt import GradientBoostedTrees
from repro.nn.workloads import Conv2DWorkload

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
DEFAULT_OUT = os.path.join(REPO_ROOT, "BENCH_steps.json")


class HardwareEmulator(Measurer):
    """A :class:`Measurer` that charges a per-configuration latency.

    Wraps an existing measurer's state and sleeps ``latency_s`` before
    each deployment, emulating a real board's round-trip time.  Pickled
    copies — the clones the pipelined loop hands to its speculation
    thread — drop the latency, because speculation *predicts* the
    deterministic result instead of deploying anything.
    """

    def __init__(self, base: Measurer, latency_s: float):
        self.__dict__.update(base.__dict__)
        self.latency_s = float(latency_s)

    def __getstate__(self):
        state = dict(self.__dict__)
        state["latency_s"] = 0.0  # speculation clones predict for free
        return state

    def measure_at(self, ordinal: int, config_index: int):
        if self.latency_s:
            time.sleep(self.latency_s)
        return super().measure_at(ordinal, config_index)


class ProductionScaleModels:
    """Boosted-tree factory with a configurable round count.

    Mirrors the ensemble's default factory but lets the benchmark dial
    the per-member boosting rounds up to production scale.  Must stay a
    module-level class: the pipelined loop pickles the tuner (factory
    included) every batch.
    """

    def __init__(self, rounds: int, seed: int = 2024):
        self.rounds = int(rounds)
        self._rng = np.random.default_rng(seed)

    def __call__(self) -> GradientBoostedTrees:
        return GradientBoostedTrees(
            n_estimators=self.rounds,
            learning_rate=0.28,
            max_depth=4,
            subsample=0.9,
            seed=self._rng,
        )


def _task():
    """The same mid-size conv task hotpaths.py times (Fig. 4 family)."""
    workload = Conv2DWorkload(
        batch=1, in_channels=32, out_channels=64, height=28, width=28,
        kernel_h=3, kernel_w=3, pad_h=1, pad_w=1,
    )
    return SimulatedTask(workload, seed=0)


def _run_arm(n_trial, latency_s, rounds, *, pipeline, refit):
    """One full tuning run; returns (wall seconds, result, event log)."""
    log = EventLog()
    tuner = BTEDBAOTuner(
        _task(),
        seed=11,
        init_size=16,
        batch_candidates=100,
        num_batches=2,
        model_factory=ProductionScaleModels(rounds),
        refit=refit,
        bao_settings=BaoSettings(neighborhood_size=256),
    )
    tuner.measurer = HardwareEmulator(tuner.measurer, latency_s)
    start = time.perf_counter()
    result = tuner.tune(
        n_trial=n_trial, early_stopping=None, on_event=[log],
        pipeline=pipeline,
    )
    return time.perf_counter() - start, result, log


def _trace(result):
    """The deterministic record stream, for conformance comparison."""
    return [
        (r.step, r.config_index, round(r.gflops, 6), r.error)
        for r in result.records
    ]


def bench_steps(n_trial, latency_s, rounds, repeats, verify):
    """Serial vs pipelined steps/sec over the same tuning budget."""
    serial_s = float("inf")
    for _ in range(repeats):
        wall, _, _ = _run_arm(
            n_trial, latency_s, rounds, pipeline=False, refit="full"
        )
        serial_s = min(serial_s, wall)

    pipelined_s = float("inf")
    pipe_result = pipe_log = None
    for _ in range(repeats):
        wall, pipe_result, pipe_log = _run_arm(
            n_trial, latency_s, rounds, pipeline=True, refit="incremental"
        )
        pipelined_s = min(pipelined_s, wall)

    resolved = pipe_log.of_type(SpeculationResolved)
    entry = {
        "n_trial": n_trial,
        "latency_ms": latency_s * 1e3,
        "rounds": rounds,
        "serial_s": serial_s,
        "pipelined_s": pipelined_s,
        "steps_per_s_serial": n_trial / serial_s,
        "steps_per_s_pipelined": n_trial / pipelined_s,
        "speedup": serial_s / pipelined_s if pipelined_s > 0 else float("inf"),
        "speculations": len(resolved),
        "speculations_adopted": sum(1 for e in resolved if e.adopted),
        "overlap_s": sum(e.overlap_s for e in resolved),
        "wall_s": pipelined_s,
    }

    if verify:
        # the speculate-validate-or-replay contract: pipelined and
        # serial runs of the *same* refit mode share one record stream
        _, check_result, _ = _run_arm(
            n_trial, latency_s, rounds, pipeline=False, refit="incremental"
        )
        matches = _trace(check_result) == _trace(pipe_result)
        entry["pipelined_matches_serial"] = matches
        if not matches:
            raise AssertionError(
                "pipelined run diverged from the serial incremental run"
            )
    return entry


def check_regression(current, baseline_path, threshold):
    """Fail when pipelined steps/sec fell below baseline / threshold."""
    with open(baseline_path, "r", encoding="utf-8") as handle:
        baseline = json.load(handle)
    base_cpu = baseline.get("meta", {}).get("cpu_count")
    cur_cpu = current["meta"]["cpu_count"]
    if base_cpu is not None and base_cpu != cur_cpu:
        print(
            f"WARNING: baseline {baseline_path} was recorded with "
            f"cpu_count={base_cpu} but this host has cpu_count={cur_cpu}; "
            "cross-host wall-clock ratios are indicative only"
        )
    offenders = []
    for name, entry in current["benchmarks"].items():
        base = baseline.get("benchmarks", {}).get(name)
        if base is None or "steps_per_s_pipelined" not in base:
            continue
        floor = base["steps_per_s_pipelined"] / threshold
        rate = entry["steps_per_s_pipelined"]
        status = "OK" if rate >= floor else "REGRESSION"
        print(
            f"check {name}: {rate:.1f} steps/s vs baseline "
            f"{base['steps_per_s_pipelined']:.1f} (floor {floor:.1f}) {status}"
        )
        if rate < floor:
            offenders.append((name, rate))
    return offenders


def main():
    """CLI entry point; returns the process exit code."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--n-trial", type=int, default=96,
        help="measurement budget per run",
    )
    parser.add_argument(
        "--latency-ms", type=float, default=20.0,
        help="emulated per-configuration measurement latency",
    )
    parser.add_argument(
        "--rounds", type=int, default=48,
        help="boosting rounds per ensemble member (production scale)",
    )
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--out", default=DEFAULT_OUT)
    parser.add_argument(
        "--check", default=None, metavar="BASELINE",
        help="baseline JSON to compare against (fail on slowdown)",
    )
    parser.add_argument(
        "--threshold", type=float, default=2.0,
        help="max tolerated pipelined steps/sec drop vs the baseline",
    )
    parser.add_argument(
        "--min-speedup", type=float, default=2.0,
        help="required pipelined-vs-serial steps/sec ratio",
    )
    parser.add_argument(
        "--no-assert", action="store_true",
        help="report the speedup without enforcing --min-speedup",
    )
    parser.add_argument(
        "--no-verify", action="store_true",
        help="skip the pipelined-vs-serial record-stream conformance run",
    )
    args = parser.parse_args()

    entry = bench_steps(
        args.n_trial, args.latency_ms / 1e3, args.rounds, args.repeats,
        verify=not args.no_verify,
    )
    results = {
        "meta": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "cpu_count": os.cpu_count(),
            "repeats": args.repeats,
        },
        "benchmarks": {"arm_bted_bao": entry},
    }
    print(f"arm_bted_bao: {json.dumps(entry)}")

    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(results, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {args.out}")

    code = 0
    if not args.no_assert:
        speedup = entry["speedup"]
        if speedup < args.min_speedup:
            print(
                f"FAIL: pipelined speedup {speedup:.2f}x is below the "
                f"{args.min_speedup:.1f}x bar"
            )
            code = 1
        else:
            print(f"PASS: pipelined speedup {speedup:.2f}x")

    if args.check is not None:
        offenders = check_regression(results, args.check, args.threshold)
        if offenders:
            print(f"FAIL: steps/sec regressions: {offenders}")
            code = 1
        else:
            print("PASS: no steps/sec regression vs baseline")
    return code


if __name__ == "__main__":
    sys.exit(main())
