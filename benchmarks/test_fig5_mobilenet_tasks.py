"""Regenerates Fig. 5: per-task #configs and GFLOPS on MobileNet-v1.

Paper's shape over the 19 tasks (T1..T19, AVG): BTED and BTED+BAO beat
AutoTVM on average GFLOPS (paper: up to +36.74% / +47.94% on single
tasks); BTED+BAO's sampling workload stays roughly at AutoTVM's level.
"""

import os

from benchmarks.conftest import save_result
from repro.experiments.fig5 import run_fig5


def test_fig5_mobilenet_tasks(benchmark, settings, results_dir):
    max_tasks = int(os.environ.get("REPRO_FIG5_TASKS", "19"))

    def run():
        return run_fig5(
            model_name="mobilenet-v1",
            arms=("autotvm", "bted", "bted+bao"),
            settings=settings,
            num_trials=settings.num_trials,
            max_tasks=max_tasks,
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    save_result(results_dir, "fig5_mobilenet_tasks", result.report())

    for arm in ("autotvm", "bted", "bted+bao"):
        benchmark.extra_info[f"avg_gflops_ratio/{arm}"] = (
            result.average_ratio(arm)
        )
        benchmark.extra_info[f"avg_configs/{arm}"] = (
            result.average_configs(arm)
        )

    # Fig. 5(b) shape: the advanced arms win on average GFLOPS
    assert result.average_ratio("bted+bao") > 100.0
    assert result.average_ratio("bted") > 98.0
    # Fig. 5(a) shape: BAO's sampling cost stays near the baseline's
    autotvm_cfgs = result.average_configs("autotvm")
    bao_cfgs = result.average_configs("bted+bao")
    assert 0.5 * autotvm_cfgs <= bao_cfgs <= 1.6 * autotvm_cfgs
